package metaserver

import (
	"errors"
	"fmt"
	"testing"

	"abase/internal/datanode"
	"abase/internal/partition"
)

// nodeByID resolves one of the test cluster's nodes.
func nodeByID(t *testing.T, m *Meta, id string) *datanode.Node {
	t.Helper()
	n, err := m.Node(id)
	if err != nil {
		t.Fatalf("node %s: %v", id, err)
	}
	return n
}

// TestFailoverPromotesFollower kills a primary and checks the whole
// detect → drain → promote → fence sequence: the route moves to a live
// follower, the epoch bumps, replicated data survives, and the new
// primary accepts writes while the old one (revived) is fenced.
func TestFailoverPromotesFollower(t *testing.T) {
	m, _ := newCluster(t, 4)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	pid := route.Partition
	oldPrimary := nodeByID(t, m, route.Primary)

	// Write through the primary so replication fans out to followers.
	for i := 0; i < 10; i++ {
		key := []byte{byte('a' + i)}
		if _, err := oldPrimary.Put(bg, pid, key, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}

	oldPrimary.SetDown(true)
	// Two probes cross the default DownAfterProbes threshold.
	m.MonitorNodeHealth()
	failed := m.MonitorNodeHealth()
	if len(failed) != 1 || failed[0] != route.Primary {
		t.Fatalf("failed-over nodes = %v, want [%s]", failed, route.Primary)
	}

	view, err := m.RoutingView("t1")
	if err != nil {
		t.Fatal(err)
	}
	newRoute := view.Partitions[0]
	if newRoute.Primary == route.Primary {
		t.Fatal("route still points at the dead primary")
	}
	if newRoute.Epoch != route.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", newRoute.Epoch, route.Epoch+1)
	}
	newPrimary := nodeByID(t, m, newRoute.Primary)
	if primary, epoch, _ := newPrimary.ReplicaRole(pid); !primary || epoch != newRoute.Epoch {
		t.Fatalf("promoted replica role=(%v,%d), want (true,%d)", primary, epoch, newRoute.Epoch)
	}

	// The drained replication backlog means all acknowledged writes
	// are readable at the new primary.
	for i := 0; i < 10; i++ {
		if _, err := newPrimary.Get(bg, pid, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("acknowledged key %c lost after failover: %v", 'a'+i, err)
		}
	}
	// Writes work at the new primary under the new epoch...
	if _, err := newPrimary.PutAt(bg, pid, newRoute.Epoch, []byte("post"), []byte("x"), 0); err != nil {
		t.Fatalf("write at new primary: %v", err)
	}
	// ...and the revived old primary is fenced.
	oldPrimary.SetDown(false)
	m.MonitorNodeHealth() // notices the revival and demotes stale roles
	if _, err := oldPrimary.Put(bg, pid, []byte("stale"), []byte("x"), 0); !errors.Is(err, datanode.ErrNotPrimary) {
		t.Fatalf("revived old primary accepted a write: err=%v", err)
	}
}

// TestFailoverCatchUpGating makes one follower strictly fresher than
// the other and checks that promotion picks it, never the staler one.
func TestFailoverCatchUpGating(t *testing.T) {
	m, _ := newCluster(t, 3)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	pid := route.Partition
	primary := nodeByID(t, m, route.Primary)
	fresh := nodeByID(t, m, route.Followers[0])
	stale := nodeByID(t, m, route.Followers[1])

	// Both followers replicate normally for a while...
	for i := 0; i < 5; i++ {
		if _, err := primary.Put(bg, pid, []byte{byte('a' + i)}, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()
	// ...then the stale one goes dark and misses a batch of writes.
	stale.SetDown(true)
	for i := 5; i < 25; i++ {
		if _, err := primary.Put(bg, pid, []byte{byte('a' + i)}, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()
	stale.SetDown(false)
	if fp, sp := fresh.ReplicationPosition(pid), stale.ReplicationPosition(pid); fp <= sp {
		t.Fatalf("setup failed: fresh pos %d <= stale pos %d", fp, sp)
	}

	if err := m.MarkNodeDown(route.Primary); err != nil {
		t.Fatal(err)
	}
	view, _ := m.RoutingView("t1")
	if got := view.Partitions[0].Primary; got != fresh.ID() {
		t.Fatalf("promoted %s, want the fresher follower %s", got, fresh.ID())
	}
}

// TestReviveResyncMissedWrites pins the revival durability contract: a
// follower that was down misses replication applies, and those applies
// are holes in its history — yet later applies advance its replication
// position past them. Revival must rebuild the replica from its current
// primary, so that a subsequent catch-up-gated promotion of the revived
// node loses nothing.
func TestReviveResyncMissedWrites(t *testing.T) {
	m, _ := newCluster(t, 3)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	pid := route.Partition
	primary := nodeByID(t, m, route.Primary)
	revived := nodeByID(t, m, route.Followers[0])
	other := nodeByID(t, m, route.Followers[1])

	for i := 0; i < 5; i++ {
		if _, err := primary.Put(bg, pid, []byte{byte('a' + i)}, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()

	// The follower goes dark and misses a batch of acknowledged writes.
	revived.SetDown(true)
	m.MonitorNodeHealth()
	m.MonitorNodeHealth() // crosses DownAfterProbes; marks it down
	if !m.NodeDown(revived.ID()) {
		t.Fatal("setup: follower not marked down")
	}
	for i := 5; i < 25; i++ {
		if _, err := primary.Put(bg, pid, []byte{byte('a' + i)}, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()

	// Revival re-syncs the replica from the current primary.
	revived.SetDown(false)
	m.MonitorNodeHealth()
	if got, want := revived.ReplicationPosition(pid), other.ReplicationPosition(pid); got != want {
		t.Fatalf("revived follower position = %d, want %d (resync did not run)", got, want)
	}

	// Force promotion of the revived node: the other follower and the
	// primary die, so it is the only live candidate.
	other.SetDown(true)
	if err := m.MarkNodeDown(other.ID()); err != nil {
		t.Fatal(err)
	}
	primary.SetDown(true)
	if err := m.MarkNodeDown(primary.ID()); err != nil {
		t.Fatal(err)
	}
	view, err := m.RoutingView("t1")
	if err != nil {
		t.Fatal(err)
	}
	if got := view.Partitions[0].Primary; got != revived.ID() {
		t.Fatalf("promoted %s, want the revived follower %s", got, revived.ID())
	}
	// Every acknowledged write — including the ones missed while down —
	// must be readable at the new primary.
	for i := 0; i < 25; i++ {
		if _, err := revived.Get(bg, pid, []byte{byte('a' + i)}); err != nil {
			t.Fatalf("acknowledged key %c lost across down window + promotion: %v", 'a'+i, err)
		}
	}
}

// TestFailoverSuspectReportAcceleratesDetection checks the proxy hint
// path: suspect reports alone (no monitor cycle) cross the probe
// threshold and fail the node over.
func TestFailoverSuspectReportAcceleratesDetection(t *testing.T) {
	m, _ := newCluster(t, 4)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 2, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := ten.Table.Partitions[0].Primary
	nodeByID(t, m, victim).SetDown(true)
	m.ReportNodeSuspect(victim)
	m.ReportNodeSuspect(victim) // second failed probe crosses the default threshold
	if !m.NodeDown(victim) {
		t.Fatal("suspect reports did not mark the node down")
	}
	view, _ := m.RoutingView("t1")
	for _, r := range view.Partitions {
		if r.Primary == victim {
			t.Fatalf("partition %s still led by the reported-down node", r.Partition)
		}
	}
}

// TestFailoverNoLiveFollower checks the blacked-out case: with every
// follower down too, the route must NOT move (nothing fresher exists)
// and the partition waits for repair.
func TestFailoverNoLiveFollower(t *testing.T) {
	m, nodes := newCluster(t, 3)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	for _, n := range nodes {
		n.SetDown(true)
	}
	m.MonitorNodeHealth()
	m.MonitorNodeHealth()
	view, _ := m.RoutingView("t1")
	if got := view.Partitions[0].Primary; got != route.Primary {
		t.Fatalf("blacked-out partition moved to %s", got)
	}
}

// TestRoutingViewVersionBumps checks that every table-shape change —
// failover and split — bumps the version a proxy cache keys on, and
// that registered proxies receive the push invalidation.
func TestRoutingViewVersionBumps(t *testing.T) {
	m, _ := newCluster(t, 4)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	inv := &invalidatingProxy{fakeProxy: fakeProxy{tenant: "t1"}}
	m.RegisterProxy(inv)

	v1, _ := m.RoutingView("t1")
	if v1.Version != 1 {
		t.Fatalf("initial version = %d", v1.Version)
	}
	if err := m.MarkNodeDown(ten.Table.Partitions[0].Primary); err != nil {
		t.Fatal(err)
	}
	v2, _ := m.RoutingView("t1")
	if v2.Version <= v1.Version {
		t.Fatalf("failover did not bump version: %d -> %d", v1.Version, v2.Version)
	}
	if inv.invalidations == 0 {
		t.Fatal("failover did not push a proxy cache invalidation")
	}
	before := inv.invalidations
	if err := m.SplitTenantPartitions("t1"); err != nil {
		t.Fatal(err)
	}
	v3, _ := m.RoutingView("t1")
	if v3.Version <= v2.Version {
		t.Fatalf("split did not bump version: %d -> %d", v2.Version, v3.Version)
	}
	if inv.invalidations <= before {
		t.Fatal("split did not push a proxy cache invalidation")
	}
}

// invalidatingProxy is a fakeProxy that also counts route-cache
// invalidation pushes.
type invalidatingProxy struct {
	fakeProxy
	invalidations int
}

func (p *invalidatingProxy) InvalidateRoutes() { p.invalidations++ }

// TestRepairAfterFailoverRestoresReplication runs the full lifecycle:
// failover (fast promotion) followed by FailNode repair (rebuild), and
// checks the partition ends with three live replicas and a working
// write path.
func TestRepairAfterFailoverRestoresReplication(t *testing.T) {
	m, _ := newCluster(t, 5)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	pid := route.Partition
	old := nodeByID(t, m, route.Primary)
	if _, err := old.Put(bg, pid, []byte("k"), []byte("v"), 0); err != nil {
		t.Fatal(err)
	}
	old.SetDown(true)
	if err := m.MarkNodeDown(route.Primary); err != nil {
		t.Fatal(err)
	}
	// Full repair: remove the dead node and rebuild its replicas.
	if err := m.FailNode(route.Primary); err != nil {
		t.Fatal(err)
	}
	view, _ := m.RoutingView("t1")
	r := view.Partitions[0]
	hosts := append([]string{r.Primary}, r.Followers...)
	if len(hosts) != 3 {
		t.Fatalf("hosts after repair = %v", hosts)
	}
	np := nodeByID(t, m, r.Primary)
	if primary, epoch, _ := np.ReplicaRole(pid); !primary || epoch != r.Epoch {
		t.Fatalf("post-repair role=(%v,%d), route epoch %d", primary, epoch, r.Epoch)
	}
	if _, err := np.PutAt(bg, pid, r.Epoch, []byte("k2"), []byte("v2"), 0); err != nil {
		t.Fatalf("write after repair: %v", err)
	}
	if _, err := np.Get(bg, pid, []byte("k")); err != nil {
		t.Fatalf("pre-failure key lost through failover+repair: %v", err)
	}
}

// TestSplitReplicatesMovedKeysToFollowers guards the failover
// invariant across splits: rehashed keys must land on the destination
// partition's FOLLOWERS too (and disappear from the source's), so a
// failover right after a split neither loses moved keys nor
// resurrects them at the source.
func TestSplitReplicatesMovedKeysToFollowers(t *testing.T) {
	m, _ := newCluster(t, 5)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 2, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Seed through primaries so replication also covers followers.
	var keys [][]byte
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("sk-%03d", i))
		keys = append(keys, k)
		route := ten.Table.RouteFor(k)
		n := nodeByID(t, m, route.Primary)
		if _, err := n.Put(bg, route.Partition, k, []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()
	if err := m.SplitTenantPartitions("t1"); err != nil {
		t.Fatal(err)
	}
	view, _ := m.RoutingView("t1")
	nparts := len(view.Partitions)

	// Kill every NEW partition's primary and fail over: the promoted
	// followers must hold the rehashed keys.
	for idx := 2; idx < nparts; idx++ {
		victim := view.Partitions[idx].Primary
		nodeByID(t, m, victim).SetDown(true)
		if err := m.MarkNodeDown(victim); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := m.RoutingView("t1")
	for _, k := range keys {
		idx := partition.PartitionOf(k, nparts)
		route := after.Partitions[idx]
		n := nodeByID(t, m, route.Primary)
		if !n.Alive() {
			t.Fatalf("partition %d has no live promoted primary", idx)
		}
		if _, err := n.Get(bg, route.Partition, k); err != nil {
			t.Fatalf("key %s unreadable at partition %d primary %s after split+failover: %v",
				k, idx, route.Primary, err)
		}
	}
	// Source-side: the moved keys' tombstones must have reached the
	// source followers, or a source failover would resurrect them in
	// scans. Check every live replica of the source partitions agrees.
	for idx := 0; idx < 2; idx++ {
		route := after.Partitions[idx]
		for _, host := range append([]string{route.Primary}, route.Followers...) {
			n, err := m.Node(host)
			if err != nil || !n.Alive() {
				continue
			}
			for _, k := range keys {
				if partition.PartitionOf(k, nparts) == idx {
					continue // still owned here
				}
				if partition.PartitionOf(k, 2) != idx {
					continue // never lived here
				}
				if _, err := n.Get(bg, route.Partition, k); err == nil {
					t.Fatalf("moved key %s still live on source replica %s", k, host)
				}
			}
		}
	}
}

// TestRepairedFollowerPositionComparable guards position
// comparability: a follower rebuilt by replica copy inherits its
// source's replication position, so it beats a long-dead stale
// follower at promotion time instead of losing to its higher op count.
func TestRepairedFollowerPositionComparable(t *testing.T) {
	m, _ := newCluster(t, 4)
	ten, err := m.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 1e9, Partitions: 1, Proxies: 1})
	if err != nil {
		t.Fatal(err)
	}
	route := ten.Table.Partitions[0]
	pid := route.Partition
	primary := nodeByID(t, m, route.Primary)
	stale := nodeByID(t, m, route.Followers[0])

	// The stale follower applies the first stretch of writes, then
	// goes dark and misses the rest.
	for i := 0; i < 30; i++ {
		if _, err := primary.Put(bg, pid, []byte(fmt.Sprintf("k%03d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()
	stale.SetDown(true)
	for i := 30; i < 50; i++ {
		if _, err := primary.Put(bg, pid, []byte(fmt.Sprintf("k%03d", i)), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	m.FlushReplication()

	// Rebuild a fresh replica on the spare node by copy: it must
	// inherit the primary's position even though it applied only ~50
	// live keys, far fewer than the primary's op count would suggest.
	spare := nodeByID(t, m, "node-3")
	if err := spare.AddReplica(partition.ReplicaID{Partition: pid, Replica: 3}, 1e9, false); err != nil {
		t.Fatal(err)
	}
	if err := primary.CopyReplicaTo(pid, spare); err != nil {
		t.Fatal(err)
	}
	stale.SetDown(false)
	if sp, st := spare.ReplicationPosition(pid), stale.ReplicationPosition(pid); sp <= st {
		t.Fatalf("rebuilt follower pos %d <= stale follower pos %d — promotion would pick the stale one", sp, st)
	}
	if sp, pp := spare.ReplicationPosition(pid), primary.ReplicationPosition(pid); sp != pp {
		t.Fatalf("rebuilt follower pos %d != source pos %d", sp, pp)
	}
}

package autoscaler

import (
	"time"

	"abase/internal/forecast"
)

// Thresholds and bounds from Algorithm 1.
const (
	// UpperThreshold triggers scale-up when U_max > 0.85·Q_T.
	UpperThreshold = 0.85
	// LowerThreshold triggers scale-down when U_max < 0.65·Q_T, and is
	// also the post-scaling utilization target (Q_T ← U_max/0.65).
	LowerThreshold = 0.65
	// ScaleDownCooldown blocks repeated downscales within 7 days.
	ScaleDownCooldown = 7 * 24 * time.Hour
)

// Action is the scaling decision kind.
type Action int

// Scaling actions.
const (
	None Action = iota
	ScaleUp
	ScaleDown
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ScaleUp:
		return "ScaleUp"
	case ScaleDown:
		return "ScaleDown"
	}
	return "None"
}

// Config bounds the per-partition quota.
type Config struct {
	// PartitionUpper is UP: above it, a scale-up triggers a partition
	// split that halves the partition quota.
	PartitionUpper float64
	// PartitionLower is LOWER: the partition quota floor on scale-down,
	// keeping headroom for occasional bursts.
	PartitionLower float64
}

// Decision is one evaluation of Algorithm 1.
type Decision struct {
	Action Action
	// NewTenantQuota is Q_T after the decision (unchanged for None).
	NewTenantQuota float64
	// NewPartitionQuota is Q_P after the decision.
	NewPartitionQuota float64
	// SplitPartitions reports that Q_P exceeded UP and a split is
	// required (the caller doubles the partition count).
	SplitPartitions bool
	// UMax is the forecast maximum used.
	UMax float64
}

// Evaluate runs Algorithm 1 for one tenant and resource dimension.
//
//	tenantQuota:   current Q_T
//	numPartitions: N
//	uMax:          forecast max usage over the next 7 days
//	lastScaleDown: time of the most recent scale-down (zero if never)
//	now:           current time (for the cooldown)
func Evaluate(cfg Config, tenantQuota float64, numPartitions int, uMax float64, lastScale time.Time, now time.Time) Decision {
	if numPartitions < 1 {
		numPartitions = 1
	}
	d := Decision{
		Action:            None,
		NewTenantQuota:    tenantQuota,
		NewPartitionQuota: tenantQuota / float64(numPartitions),
		UMax:              uMax,
	}
	switch {
	case uMax > UpperThreshold*tenantQuota:
		d.Action = ScaleUp
		d.NewTenantQuota = uMax / LowerThreshold
		d.NewPartitionQuota = d.NewTenantQuota / float64(numPartitions)
		if cfg.PartitionUpper > 0 && d.NewPartitionQuota > cfg.PartitionUpper {
			d.SplitPartitions = true
			d.NewPartitionQuota = 0.5 * d.NewPartitionQuota
		}
	case uMax < LowerThreshold*tenantQuota && now.Sub(lastScale) >= ScaleDownCooldown:
		d.Action = ScaleDown
		d.NewTenantQuota = uMax / LowerThreshold
		qp := d.NewTenantQuota / float64(numPartitions)
		if cfg.PartitionLower > 0 && qp < cfg.PartitionLower {
			qp = cfg.PartitionLower
			d.NewTenantQuota = qp * float64(numPartitions)
		}
		d.NewPartitionQuota = qp
	}
	return d
}

// TenantScaler drives Algorithm 1 for one tenant and one resource
// dimension from its usage history.
type TenantScaler struct {
	Cfg Config
	// Horizon is the forecast horizon in samples (default 168 = 7 days
	// hourly).
	Horizon int
	// SamplesPerDay for the forecaster (default 24).
	SamplesPerDay int

	lastScale    time.Time
	lastDecision Decision
	scaleUps     int
	scaleDowns   int
	splits       int
}

// Evaluate forecasts usage from history and applies Algorithm 1,
// recording cooldown state. quotaHist may be nil.
func (s *TenantScaler) Evaluate(history, quotaHist []float64, tenantQuota float64, numPartitions int, now time.Time) Decision {
	horizon := s.Horizon
	if horizon <= 0 {
		horizon = 168
	}
	spd := s.SamplesPerDay
	if spd <= 0 {
		spd = 24
	}
	res := forecast.Predict(history, horizon, forecast.Options{
		SamplesPerDay: spd,
		Quota:         quotaHist,
	})
	d := Evaluate(s.Cfg, tenantQuota, numPartitions, res.Max, s.lastScale, now)
	switch d.Action {
	case ScaleUp:
		s.scaleUps++
		s.lastScale = now
	case ScaleDown:
		s.scaleDowns++
		s.lastScale = now
	}
	if d.SplitPartitions {
		s.splits++
	}
	s.lastDecision = d
	return d
}

// Counters returns cumulative scale-up/down/split counts.
func (s *TenantScaler) Counters() (ups, downs, splits int) {
	return s.scaleUps, s.scaleDowns, s.splits
}

// LastDecision returns the most recent decision.
func (s *TenantScaler) LastDecision() Decision { return s.lastDecision }

// Package autoscaler implements ABase's predictive scaling policy
// (Algorithm 1, §5.1). Quotas are categorized into RU and Storage,
// each scaling independently. The policy forecasts the next 7 days'
// maximum usage U_max from a 30-day hourly history; when U_max exceeds
// 85% of the tenant quota, the quota is raised so that U_max sits at
// 65%; when U_max falls below 65% (and no scaling happened in the last
// 7 days), the quota is lowered to the same target. Scaling up may
// push the partition quota above the upper bound UP, triggering a
// partition split; scaling down never drops the partition quota below
// LOWER, preserving burst headroom.
package autoscaler

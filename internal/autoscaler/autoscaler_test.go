package autoscaler

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)

func TestScaleUpTriggered(t *testing.T) {
	// U_max = 90 > 0.85·100 → scale up to 90/0.65 ≈ 138.5.
	d := Evaluate(Config{}, 100, 4, 90, time.Time{}, t0)
	if d.Action != ScaleUp {
		t.Fatalf("action = %v", d.Action)
	}
	want := 90 / 0.65
	if math.Abs(d.NewTenantQuota-want) > 1e-9 {
		t.Fatalf("quota = %v, want %v", d.NewTenantQuota, want)
	}
	if math.Abs(d.NewPartitionQuota-want/4) > 1e-9 {
		t.Fatalf("partition quota = %v", d.NewPartitionQuota)
	}
	if d.SplitPartitions {
		t.Fatal("unexpected split")
	}
}

func TestScaleUpTriggersSplit(t *testing.T) {
	// New partition quota 34.6 > UP=30 → split halves it.
	d := Evaluate(Config{PartitionUpper: 30}, 100, 4, 90, time.Time{}, t0)
	if !d.SplitPartitions {
		t.Fatal("split not triggered")
	}
	if math.Abs(d.NewPartitionQuota-(90/0.65/4/2)) > 1e-9 {
		t.Fatalf("post-split partition quota = %v", d.NewPartitionQuota)
	}
}

func TestScaleDownTriggered(t *testing.T) {
	// U_max = 30 < 0.65·100, no recent scaling → down to 30/0.65.
	d := Evaluate(Config{}, 100, 2, 30, time.Time{}, t0)
	if d.Action != ScaleDown {
		t.Fatalf("action = %v", d.Action)
	}
	want := 30 / 0.65
	if math.Abs(d.NewTenantQuota-want) > 1e-9 {
		t.Fatalf("quota = %v", d.NewTenantQuota)
	}
}

func TestScaleDownCooldown(t *testing.T) {
	recent := t0.Add(-3 * 24 * time.Hour) // scaled 3 days ago
	d := Evaluate(Config{}, 100, 2, 30, recent, t0)
	if d.Action != None {
		t.Fatalf("cooldown violated: %v", d.Action)
	}
	old := t0.Add(-8 * 24 * time.Hour)
	d = Evaluate(Config{}, 100, 2, 30, old, t0)
	if d.Action != ScaleDown {
		t.Fatalf("stale cooldown blocked scale-down: %v", d.Action)
	}
}

func TestScaleDownFloor(t *testing.T) {
	// 4 partitions, LOWER=10: U_max tiny → partition quota clamps to 10,
	// tenant quota to 40.
	d := Evaluate(Config{PartitionLower: 10}, 1000, 4, 1, time.Time{}, t0)
	if d.Action != ScaleDown {
		t.Fatalf("action = %v", d.Action)
	}
	if d.NewPartitionQuota != 10 || d.NewTenantQuota != 40 {
		t.Fatalf("quota = %v / partition %v", d.NewTenantQuota, d.NewPartitionQuota)
	}
}

func TestSteadyStateNoAction(t *testing.T) {
	// U_max = 75 is between 0.65·100 and 0.85·100 → no action.
	d := Evaluate(Config{}, 100, 2, 75, time.Time{}, t0)
	if d.Action != None {
		t.Fatalf("action = %v", d.Action)
	}
	if d.NewTenantQuota != 100 {
		t.Fatalf("quota changed: %v", d.NewTenantQuota)
	}
}

func TestPropertyPostScaleUtilizationHealthy(t *testing.T) {
	// After any scaling action (without bounds), the forecast max sits
	// at exactly LowerThreshold of the new quota.
	f := func(quotaQ, uQ uint16) bool {
		q := float64(quotaQ%1000) + 1
		u := float64(uQ%2000) + 1
		d := Evaluate(Config{}, q, 1, u, time.Time{}, t0)
		if d.Action == None {
			return true
		}
		return math.Abs(u/d.NewTenantQuota-LowerThreshold) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNoActionInsideBand(t *testing.T) {
	f := func(qQ uint16) bool {
		q := float64(qQ%1000) + 10
		u := 0.75 * q
		return Evaluate(Config{}, q, 1, u, time.Time{}, t0).Action == None
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTenantScalerEndToEnd(t *testing.T) {
	// Rising usage: 30 days hourly history climbing toward the quota.
	history := make([]float64, 720)
	for i := range history {
		history[i] = 50 + 0.08*float64(i) // ends at ~107, trending up
	}
	s := &TenantScaler{}
	d := s.Evaluate(history, nil, 120, 4, t0)
	if d.Action != ScaleUp {
		t.Fatalf("action = %v (UMax=%v)", d.Action, d.UMax)
	}
	ups, _, _ := s.Counters()
	if ups != 1 {
		t.Fatalf("ups = %d", ups)
	}
	if s.LastDecision().Action != ScaleUp {
		t.Fatal("LastDecision not recorded")
	}
	// Immediately after, a declining forecast must respect the cooldown.
	flat := make([]float64, 720)
	for i := range flat {
		flat[i] = 10
	}
	d2 := s.Evaluate(flat, nil, d.NewTenantQuota, 4, t0.Add(time.Hour))
	if d2.Action != None {
		t.Fatalf("cooldown ignored: %v", d2.Action)
	}
	// A week later the downscale may proceed.
	d3 := s.Evaluate(flat, nil, d.NewTenantQuota, 4, t0.Add(8*24*time.Hour))
	if d3.Action != ScaleDown {
		t.Fatalf("action = %v", d3.Action)
	}
}

func TestActionString(t *testing.T) {
	if None.String() != "None" || ScaleUp.String() != "ScaleUp" || ScaleDown.String() != "ScaleDown" {
		t.Fatal("Action strings wrong")
	}
}

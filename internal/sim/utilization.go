package sim

import (
	"math"
	"time"
)

// hourTime converts a simulation hour to a wall-clock time for the
// autoscaler's cooldown accounting.
func hourTime(h int) time.Time {
	return time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

// MachineSpec is the per-machine capacity for the §6.4 utilization
// comparison.
type MachineSpec struct {
	CPU  float64 // RU/s the machine can serve
	Mem  float64 // bytes of memory
	Disk float64 // bytes of disk
}

// TenantDemand is a tenant's resource demand for the comparison.
type TenantDemand struct {
	CPUAvg  float64 // average RU/s
	CPUPeak float64 // peak RU/s
	Mem     float64 // working set (cache) bytes
	Disk    float64 // stored bytes
}

// Utilization is the average machine utilization per dimension.
type Utilization struct {
	CPU  float64
	Mem  float64
	Disk float64
	// Machines is the fleet size the layout required.
	Machines int
}

// PreUtilization models the single-tenant ABase-Pre baseline (§6.4):
// every tenant gets dedicated machines sized for its peak, with the
// single-tenant robustness cap — utilization must stay below 2/3 so a
// 3-replica deployment survives one node failure (§3.3) — and a
// minimum of 3 machines per tenant for replication. Memory is
// provisioned per machine regardless of use, so small tenants strand
// most of it.
func PreUtilization(tenants []TenantDemand, m MachineSpec) Utilization {
	const utilCap = 2.0 / 3.0
	var machines float64
	var cpuUsed, memUsed, diskUsed float64
	for _, t := range tenants {
		needCPU := math.Ceil(t.CPUPeak / (m.CPU * utilCap))
		needDisk := math.Ceil(t.Disk * 3 / (m.Disk * utilCap)) // 3 replicas
		needMem := math.Ceil(t.Mem / (m.Mem * utilCap))
		n := math.Max(3, math.Max(needCPU, math.Max(needDisk, needMem)))
		machines += n
		cpuUsed += t.CPUAvg
		memUsed += t.Mem
		diskUsed += t.Disk * 3
	}
	if machines == 0 {
		return Utilization{}
	}
	return Utilization{
		CPU:      cpuUsed / (machines * m.CPU),
		Mem:      memUsed / (machines * m.Mem),
		Disk:     diskUsed / (machines * m.Disk),
		Machines: int(machines),
	}
}

// MultiUtilization models the multi-tenant ABase resource pool: all
// tenants share one pool sized by the lessons of §7 — at least 20%
// idle resources, pool at least 10× the largest tenant — with
// rescheduling keeping nodes balanced, so the pool only needs headroom
// for the aggregate (not per-tenant) peak. N-node redundancy replaces
// the per-tenant 2/3 cap (§3.3).
func MultiUtilization(tenants []TenantDemand, m MachineSpec) Utilization {
	var cpuAvg, cpuPeakSum, maxTenantCPU float64
	var memUsed, diskUsed float64
	for _, t := range tenants {
		cpuAvg += t.CPUAvg
		cpuPeakSum += t.CPUPeak
		if t.CPUPeak > maxTenantCPU {
			maxTenantCPU = t.CPUPeak
		}
		memUsed += t.Mem
		diskUsed += t.Disk * 3
	}
	// Diurnal peaks don't align across tenants: the pool's aggregate
	// peak is far below the sum of individual peaks. Model it as the
	// average demand plus a diversity-discounted share of the peaks.
	aggregatePeak := cpuAvg + 0.3*(cpuPeakSum-cpuAvg)

	// Pool sizing: 20% idle over the aggregate peak, and ≥10× the
	// largest tenant's quota (blast-radius lesson).
	needByCPU := aggregatePeak / 0.8 / m.CPU
	needByDisk := diskUsed / 0.8 / m.Disk
	needByMem := memUsed / 0.8 / m.Mem
	needByBlast := 10 * maxTenantCPU / m.CPU
	machines := math.Ceil(math.Max(math.Max(needByCPU, needByDisk), math.Max(needByMem, needByBlast)))
	if machines == 0 {
		return Utilization{}
	}
	return Utilization{
		CPU:      cpuAvg / (machines * m.CPU),
		Mem:      memUsed / (machines * m.Mem),
		Disk:     diskUsed / (machines * m.Disk),
		Machines: int(machines),
	}
}

// DemandsFromTenants converts pool tenants into §6.4 demands. Memory
// working set is modeled as the cache-resident fraction of storage
// (hot data), bounded below by a per-tenant metadata floor.
func DemandsFromTenants(tenants []TenantLoad) []TenantDemand {
	out := make([]TenantDemand, len(tenants))
	for i, t := range tenants {
		peak := t.RUAvg * (1 + t.DiurnalAmp)
		mem := 0.25*t.Storage + 1 // hot working set + floor
		out[i] = TenantDemand{
			CPUAvg:  t.RUAvg,
			CPUPeak: peak,
			Mem:     mem,
			Disk:    t.Storage,
		}
	}
	return out
}

// Package sim provides the pool-scale simulation substrate for the
// experiments that need thousands of DataNodes or months of traffic —
// Figure 9 (offline rescheduling of a 1000-node pool), Figure 10
// (online rescheduling convergence), Figure 8b (oncall reduction from
// predictive autoscaling), and the §6.4 single-tenant (ABase-Pre)
// versus multi-tenant utilization comparison. Request-level behaviour
// is exercised elsewhere (internal/datanode); here replicas are load
// vectors on the rescheduler's pool model.
package sim

package sim

import (
	"fmt"
	"math"
	"math/rand"

	"abase/internal/rescheduler"
)

// Placement selects the initial replica placement quality.
type Placement int

// Placement strategies.
const (
	// PlacementSkewed packs replicas onto a fraction of the nodes —
	// the organically grown, imbalanced layout Figure 9a shows.
	PlacementSkewed Placement = iota
	// PlacementRandom places replicas uniformly at random.
	PlacementRandom
	// PlacementRoundRobin places replicas evenly.
	PlacementRoundRobin
)

// TenantLoad describes one tenant's aggregate load for pool simulation.
type TenantLoad struct {
	Name string
	// RUAvg is the tenant's average RU rate; the per-hour shape adds a
	// diurnal swing around it.
	RUAvg float64
	// Storage is the tenant's total storage footprint.
	Storage float64
	// Partitions is the partition count; each partition contributes
	// one replica per ReplicaFactor.
	Partitions int
	// PeakHour rotates the tenant's diurnal peak (diversity of §2.1).
	PeakHour int
	// DiurnalAmp is the swing amplitude as a fraction of RUAvg.
	DiurnalAmp float64
}

// BuildSpec configures BuildPool.
type BuildSpec struct {
	Nodes         int
	NodeRUCap     float64
	NodeStoCap    float64
	ReplicaFactor int
	Placement     Placement
	Seed          int64
}

// BuildPool constructs a rescheduler pool hosting the tenants' replicas
// under the given placement.
func BuildPool(tenants []TenantLoad, spec BuildSpec) *rescheduler.Pool {
	if spec.ReplicaFactor <= 0 {
		spec.ReplicaFactor = 3
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pool := rescheduler.NewPool()
	nodeIDs := make([]string, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		id := fmt.Sprintf("dn-%04d", i)
		nodeIDs[i] = id
		pool.AddNode(rescheduler.NewNode(id, spec.NodeRUCap, spec.NodeStoCap))
	}
	place := 0
	for _, t := range tenants {
		parts := t.Partitions
		if parts <= 0 {
			parts = 1
		}
		perPartRU := t.RUAvg / float64(parts)
		perPartSto := t.Storage / float64(parts) / float64(spec.ReplicaFactor)
		for p := 0; p < parts; p++ {
			for r := 0; r < spec.ReplicaFactor; r++ {
				re := &rescheduler.Replica{
					ID:        fmt.Sprintf("%s/%d/%d", t.Name, p, r),
					Tenant:    t.Name,
					Partition: fmt.Sprintf("%s/%d", t.Name, p),
					RU:        diurnalVec(perPartRU, t.DiurnalAmp, t.PeakHour),
					Storage:   perPartSto,
				}
				var nodeID string
				switch spec.Placement {
				case PlacementSkewed:
					// Pack into the first third of the pool.
					span := spec.Nodes / 3
					if span < 1 {
						span = 1
					}
					nodeID = nodeIDs[rng.Intn(span)]
				case PlacementRandom:
					nodeID = nodeIDs[rng.Intn(spec.Nodes)]
				default:
					nodeID = nodeIDs[place%spec.Nodes]
					place++
				}
				// Avoid same-partition collision on a node: probe forward.
				for tries := 0; tries < spec.Nodes; tries++ {
					n := pool.Node(nodeID)
					collision := false
					for _, hosted := range n.Replicas() {
						if hosted.Partition == re.Partition {
							collision = true
							break
						}
					}
					if !collision {
						break
					}
					nodeID = nodeIDs[rng.Intn(spec.Nodes)]
				}
				pool.Place(re, nodeID)
			}
		}
	}
	return pool
}

// diurnalVec builds an hour-of-day RU vector with a sinusoidal swing
// peaking at peakHour.
func diurnalVec(avg, amp float64, peakHour int) rescheduler.Vec24 {
	var v rescheduler.Vec24
	for h := 0; h < 24; h++ {
		phase := 2 * math.Pi * float64(h-peakHour) / 24
		x := avg * (1 + amp*math.Cos(phase))
		if x < 0 {
			x = 0
		}
		v[h] = x
	}
	return v
}

// RandomTenants generates n tenants with log-normal RU/storage demand
// and rotated diurnal peaks, echoing Figure 3's diversity.
func RandomTenants(n int, seed int64) []TenantLoad {
	rng := rand.New(rand.NewSource(seed))
	out := make([]TenantLoad, n)
	for i := range out {
		z := rng.NormFloat64()
		ru := math.Exp(1.2*z + 0.6*rng.NormFloat64() + 3)
		sto := math.Exp(1.0*z + 0.8*rng.NormFloat64() + 4)
		// Partition counts scale with tenant demand, as the
		// autoscaler's splits enforce in production (Algorithm 1's UP
		// bound): no single replica carries more than ~25 RU, so the
		// rescheduler has movable units to balance with.
		parts := 1 + int(ru/25)
		if parts > 64 {
			parts = 64
		}
		out[i] = TenantLoad{
			Name:       fmt.Sprintf("t%03d", i),
			RUAvg:      ru,
			Storage:    sto,
			Partitions: parts,
			PeakHour:   rng.Intn(24),
			DiurnalAmp: 0.2 + 0.5*rng.Float64(),
		}
	}
	return out
}

// OnlineSim drives a pool through drifting tenant load for the
// Figure 10 online-rescheduling experiment.
type OnlineSim struct {
	Pool *rescheduler.Pool
	rng  *rand.Rand
	// drift state per tenant: multiplicative random-walk factor.
	factors map[string]float64
}

// NewOnlineSim wraps a pool for online simulation.
func NewOnlineSim(pool *rescheduler.Pool, seed int64) *OnlineSim {
	return &OnlineSim{
		Pool:    pool,
		rng:     rand.New(rand.NewSource(seed)),
		factors: make(map[string]float64),
	}
}

// Drift perturbs every tenant's replica loads by a bounded random walk
// (load dynamism between rescheduling rounds).
func (s *OnlineSim) Drift(scale float64) {
	// Collect replicas grouped by tenant so a tenant's replicas drift
	// together (its traffic changes as a whole).
	byTenant := map[string][]*rescheduler.Replica{}
	for _, n := range s.Pool.Nodes() {
		for _, r := range n.Replicas() {
			byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
		}
	}
	for tenant, reps := range byTenant {
		f, ok := s.factors[tenant]
		if !ok {
			f = 1
		}
		f *= 1 + scale*(s.rng.Float64()*2-1)
		if f < 0.2 {
			f = 0.2
		}
		if f > 5 {
			f = 5
		}
		step := f / orOne(s.factors[tenant])
		s.factors[tenant] = f
		for _, r := range reps {
			scaled := r.RU
			for h := range scaled {
				scaled[h] *= step
			}
			s.Pool.SetReplicaRU(r, scaled)
		}
	}
}

func orOne(f float64) float64 {
	if f == 0 {
		return 1
	}
	return f
}

// Sample is one observation of the pool's RU utilization spread.
type Sample struct {
	Hour int
	Max  float64
	Avg  float64
}

// RunOnline simulates hours of drifting load. Rescheduling runs every
// rescheduleEvery hours when enabled (the paper runs it every 10
// minutes; the simulation's coarser step preserves the convergence
// shape). It returns hourly max/avg RU utilization samples.
func (s *OnlineSim) RunOnline(hours int, rescheduleEvery float64, enabled bool, theta float64) []Sample {
	var out []Sample
	acc := 0.0
	for h := 0; h < hours; h++ {
		s.Drift(0.04)
		if enabled {
			acc += 1.0
			for acc >= rescheduleEvery {
				s.Pool.ClearMigrating()
				s.Pool.ReschedulePass(theta)
				acc -= rescheduleEvery
			}
		}
		maxU, avgU := s.Pool.MaxAvgRUUtil()
		out = append(out, Sample{Hour: h, Max: maxU, Avg: avgU})
	}
	return out
}

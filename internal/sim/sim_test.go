package sim

import (
	"testing"

	"abase/internal/rescheduler"
)

func TestBuildPoolPlacesAllReplicas(t *testing.T) {
	tenants := RandomTenants(20, 1)
	pool := BuildPool(tenants, BuildSpec{
		Nodes: 30, NodeRUCap: 10000, NodeStoCap: 100000,
		ReplicaFactor: 3, Placement: PlacementRandom, Seed: 1,
	})
	want := 0
	for _, tl := range tenants {
		want += tl.Partitions * 3
	}
	got := 0
	for _, n := range pool.Nodes() {
		got += n.NumReplicas()
	}
	if got != want {
		t.Fatalf("placed %d replicas, want %d", got, want)
	}
}

func TestBuildPoolSkewedIsImbalanced(t *testing.T) {
	tenants := RandomTenants(40, 2)
	skewed := BuildPool(tenants, BuildSpec{
		Nodes: 60, NodeRUCap: 10000, NodeStoCap: 100000,
		Placement: PlacementSkewed, Seed: 2,
	})
	rr := BuildPool(tenants, BuildSpec{
		Nodes: 60, NodeRUCap: 10000, NodeStoCap: 100000,
		Placement: PlacementRoundRobin, Seed: 2,
	})
	sStd, _ := skewed.StdDevs()
	rStd, _ := rr.StdDevs()
	if sStd <= rStd {
		t.Fatalf("skewed placement not more imbalanced: %v vs %v", sStd, rStd)
	}
}

func TestBuildPoolNoPartitionCollisions(t *testing.T) {
	tenants := RandomTenants(10, 3)
	pool := BuildPool(tenants, BuildSpec{
		Nodes: 20, NodeRUCap: 10000, NodeStoCap: 100000, Placement: PlacementRandom, Seed: 3,
	})
	for _, n := range pool.Nodes() {
		seen := map[string]bool{}
		for _, r := range n.Replicas() {
			if seen[r.Partition] {
				t.Fatalf("node %s hosts partition %s twice", n.ID, r.Partition)
			}
			seen[r.Partition] = true
		}
	}
}

func TestRescheduleSkewedPoolFig9Shape(t *testing.T) {
	// Figure 9: offline rescheduling on a skewed pool cuts RU std by
	// ~74.5% and storage variance by ~84.8%. Check the shape at 200
	// nodes.
	tenants := RandomTenants(80, 4)
	pool := BuildPool(tenants, BuildSpec{
		Nodes: 200, NodeRUCap: 300, NodeStoCap: 300,
		Placement: PlacementSkewed, Seed: 4,
	})
	ruB, stoB := pool.StdDevs()
	pool.RescheduleToConvergence(0.02, 300)
	ruA, stoA := pool.StdDevs()
	if 1-ruA/ruB < 0.5 {
		t.Fatalf("RU std reduction only %.1f%%", (1-ruA/ruB)*100)
	}
	if 1-stoA/stoB < 0.5 {
		t.Fatalf("storage std reduction only %.1f%%", (1-stoA/stoB)*100)
	}
}

func TestOnlineSimDriftPreservesReplicas(t *testing.T) {
	tenants := RandomTenants(10, 5)
	pool := BuildPool(tenants, BuildSpec{
		Nodes: 20, NodeRUCap: 10000, NodeStoCap: 100000, Placement: PlacementRandom, Seed: 5,
	})
	before := countReplicas(pool)
	s := NewOnlineSim(pool, 5)
	for i := 0; i < 10; i++ {
		s.Drift(0.1)
	}
	if got := countReplicas(pool); got != before {
		t.Fatalf("replicas changed: %d → %d", before, got)
	}
	// Node sums must stay consistent with replica sums.
	for _, n := range pool.Nodes() {
		var sum rescheduler.Vec24
		for _, r := range n.Replicas() {
			sum = sum.Add(r.RU)
		}
		if diff := sum.Max() - n.RULoad(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("node %s sums drifted: %v vs %v", n.ID, sum.Max(), n.RULoad())
		}
	}
}

func countReplicas(p *rescheduler.Pool) int {
	n := 0
	for _, node := range p.Nodes() {
		n += node.NumReplicas()
	}
	return n
}

func TestRunOnlineFig10Shape(t *testing.T) {
	// Figure 10: with rescheduling every 10 minutes, max node QPS
	// converges toward the average. Compare gap with/without.
	tenants := RandomTenants(40, 6)
	mk := func(seed int64) *OnlineSim {
		pool := BuildPool(tenants, BuildSpec{
			Nodes: 50, NodeRUCap: 500, NodeStoCap: 1000,
			Placement: PlacementSkewed, Seed: seed,
		})
		return NewOnlineSim(pool, seed)
	}
	off := mk(7).RunOnline(48, 1, false, 0.02)
	on := mk(7).RunOnline(48, 1, true, 0.02)
	gapOff := avgGap(off[24:])
	gapOn := avgGap(on[24:])
	if gapOn >= gapOff {
		t.Fatalf("rescheduling did not shrink max-avg gap: on=%v off=%v", gapOn, gapOff)
	}
	if gapOn > 0.75*gapOff {
		t.Fatalf("convergence too weak: on=%v off=%v", gapOn, gapOff)
	}
}

func avgGap(samples []Sample) float64 {
	var g float64
	for _, s := range samples {
		g += s.Max - s.Avg
	}
	return g / float64(len(samples))
}

func TestOncallSimReduction(t *testing.T) {
	weeks := RunOncallSim(OncallConfig{Tenants: 60, Weeks: 20, DeployWeek: 10, Seed: 1})
	if len(weeks) != 20 {
		t.Fatalf("weeks = %d", len(weeks))
	}
	before, after, reduction := OncallReduction(weeks)
	if before == 0 {
		t.Fatal("no oncalls before deployment — growth model broken")
	}
	// Paper: ≈65% reduction. Demand at least 40% for the shape.
	if reduction < 0.4 {
		t.Fatalf("oncall reduction %.0f%% (before %.1f/wk, after %.1f/wk)",
			reduction*100, before, after)
	}
}

func TestUtilizationPreVsMulti(t *testing.T) {
	tenants := RandomTenants(100, 8)
	demands := DemandsFromTenants(tenants)
	m := MachineSpec{CPU: 1000, Mem: 256, Disk: 4096}
	pre := PreUtilization(demands, m)
	multi := MultiUtilization(demands, m)
	if pre.Machines == 0 || multi.Machines == 0 {
		t.Fatal("no machines allocated")
	}
	// §6.4 shape: multi-tenant roughly doubles CPU and disk
	// utilization and uses fewer machines.
	if multi.CPU < 1.5*pre.CPU {
		t.Fatalf("CPU: pre=%.2f multi=%.2f, want ≥1.5×", pre.CPU, multi.CPU)
	}
	if multi.Disk < 1.3*pre.Disk {
		t.Fatalf("Disk: pre=%.2f multi=%.2f", pre.Disk, multi.Disk)
	}
	if multi.Mem <= pre.Mem {
		t.Fatalf("Mem: pre=%.2f multi=%.2f", pre.Mem, multi.Mem)
	}
	if multi.Machines >= pre.Machines {
		t.Fatalf("machines: pre=%d multi=%d", pre.Machines, multi.Machines)
	}
	// Utilizations must be sane fractions.
	for _, u := range []float64{pre.CPU, pre.Mem, pre.Disk, multi.CPU, multi.Mem, multi.Disk} {
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", u)
		}
	}
}

func TestUtilizationEmpty(t *testing.T) {
	m := MachineSpec{CPU: 1, Mem: 1, Disk: 1}
	if u := PreUtilization(nil, m); u.Machines != 0 {
		t.Fatal("empty pre should be zero")
	}
	if u := MultiUtilization(nil, m); u.Machines != 0 {
		t.Fatal("empty multi should be zero")
	}
}

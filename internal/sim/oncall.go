package sim

import (
	"math/rand"

	"abase/internal/autoscaler"
	"abase/internal/workload"
)

// OncallConfig configures the Figure 8b oncall simulation: months of
// synthetic tenant traffic replayed against static (manually scaled)
// quotas, with the predictive autoscaler deployed partway through.
type OncallConfig struct {
	// Tenants is the population size.
	Tenants int
	// Weeks is the simulation length.
	Weeks int
	// DeployWeek is when the autoscaler goes live.
	DeployWeek int
	// Seed seeds the generators.
	Seed int64
}

// WeeklyOncalls is one week's oncall count.
type WeeklyOncalls struct {
	Week    int
	Oncalls int
	// AutoscalerLive reports whether the autoscaler was deployed.
	AutoscalerLive bool
}

// oncallTenant is the per-tenant simulation state.
type oncallTenant struct {
	series     []float64 // full usage history (hourly)
	quota      float64
	scaler     *autoscaler.TenantScaler
	lastOncall int // hour of last oncall (rate-limit 1/day)
}

// RunOncallSim replays cfg.Weeks of hourly traffic for a tenant
// population. Before DeployWeek, quotas are managed reactively: an
// oncall fires when a tenant is throttled (usage above quota) for two
// consecutive hours, after which an operator raises the quota (this is
// exactly the "upscaling oncall" the paper counts); at most one oncall
// per tenant per day. From DeployWeek on, the predictive autoscaler
// evaluates each tenant daily from its trailing 30-day history and
// raises quotas before exhaustion, so oncalls only fire on genuinely
// unforecastable jumps.
func RunOncallSim(cfg OncallConfig) []WeeklyOncalls {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 100
	}
	if cfg.Weeks <= 0 {
		cfg.Weeks = 26
	}
	if cfg.DeployWeek <= 0 || cfg.DeployWeek > cfg.Weeks {
		cfg.DeployWeek = cfg.Weeks / 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	hours := cfg.Weeks * 7 * 24

	tenants := make([]*oncallTenant, cfg.Tenants)
	for i := range tenants {
		base := 50 + rng.Float64()*200
		spec := workload.SeriesSpec{
			Hours:        hours,
			Base:         base,
			DailyAmp:     base * (0.1 + 0.4*rng.Float64()),
			WeeklyAmp:    base * 0.1 * rng.Float64(),
			TrendPerHour: base * 0.0006 * (0.3 + rng.Float64()), // steady growth
			Noise:        base * 0.05,
			BurstProb:    0.001,
			BurstFactor:  1.5 + rng.Float64(),
			Seed:         cfg.Seed + int64(i),
		}
		series := spec.Gen()
		tenants[i] = &oncallTenant{
			series:     series,
			quota:      series[0] * 2.0, // initial provisioning headroom
			scaler:     &autoscaler.TenantScaler{},
			lastOncall: -48,
		}
	}

	deployHour := cfg.DeployWeek * 7 * 24
	weekly := make([]WeeklyOncalls, cfg.Weeks)
	for w := range weekly {
		weekly[w] = WeeklyOncalls{Week: w, AutoscalerLive: w >= cfg.DeployWeek}
	}

	for h := 1; h < hours; h++ {
		week := h / (7 * 24)
		for _, t := range tenants {
			usage := t.series[h]
			prevUsage := t.series[h-1]
			throttledNow := usage > t.quota
			throttledPrev := prevUsage > t.quota
			if throttledNow && throttledPrev && h-t.lastOncall >= 24 {
				// Sustained throttling → oncall → operator raises quota.
				weekly[week].Oncalls++
				t.lastOncall = h
				t.quota = usage / autoscaler.LowerThreshold
			}
			// Autoscaler evaluates every other day once deployed (the
			// 7-day forecast horizon makes daily evaluation redundant).
			if h >= deployHour && h%48 == 0 {
				lo := h - 720
				if lo < 0 {
					lo = 0
				}
				d := t.scaler.Evaluate(t.series[lo:h], nil, t.quota, 1, hourTime(h))
				if d.Action == autoscaler.ScaleUp {
					t.quota = d.NewTenantQuota
				}
			}
		}
	}
	return weekly
}

// OncallReduction summarizes the result: average weekly oncalls before
// and after deployment and the relative reduction (paper: ≈65%).
func OncallReduction(weeks []WeeklyOncalls) (before, after, reduction float64) {
	var bSum, aSum, bN, aN float64
	for _, w := range weeks {
		if w.AutoscalerLive {
			aSum += float64(w.Oncalls)
			aN++
		} else {
			bSum += float64(w.Oncalls)
			bN++
		}
	}
	if bN > 0 {
		before = bSum / bN
	}
	if aN > 0 {
		after = aSum / aN
	}
	if before > 0 {
		reduction = 1 - after/before
	}
	return before, after, reduction
}

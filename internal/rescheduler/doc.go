// Package rescheduler implements ABase's multi-resource workload
// rescheduling (§5.3, Algorithm 2). It operates on a load model of a
// resource pool — replicas with 24-dimension hour-of-day RU load
// vectors and storage footprints, placed on DataNodes with RU and
// storage capacities — and produces migrations that balance both
// dimensions without breaking per-tenant replica distribution.
//
// Phase 1 balances each tenant's replica count across nodes (elasticity
// and failure robustness); phase 2 balances RU and storage utilization.
// The same machinery extends to inter-pool rebalancing: vacate
// low-utilization nodes from an underloaded pool and reassign them to
// an overloaded pool.
package rescheduler

package rescheduler

import (
	"math"
	"sort"
)

// Migration is one replica move decided by the algorithm.
type Migration struct {
	ReplicaID string
	Tenant    string
	From      string
	To        string
	Resource  Resource
	Gain      float64
}

// CanPlace reports whether dst can accept re (§5.3 / Algorithm 2 line
// 10): dst must not already hold a replica of the same partition, and
// the move must preserve the tenant's even replica distribution — dst
// may not end up with two more of the tenant's replicas than the
// source would keep.
func CanPlace(re *Replica, dst *Node) bool {
	if dst == nil || re.node == nil || dst == re.node {
		return false
	}
	if dst.hostsPartition(re.Partition, re) {
		return false
	}
	srcCount, dstCount := 0, 0
	for _, r := range re.node.replicas {
		if r.Tenant == re.Tenant {
			srcCount++
		}
	}
	for _, r := range dst.replicas {
		if r.Tenant == re.Tenant {
			dstCount++
		}
	}
	// After the move: src has srcCount−1, dst has dstCount+1. Keep the
	// distribution from inverting: the destination may not exceed the
	// source's remaining count by more than one.
	return dstCount+1 <= (srcCount-1)+1
}

// ReschedulePass runs one pass of Algorithm 2 over the pool: for each
// resource dimension, divide nodes into S_L/S_M/S_H with threshold
// theta, then for every non-migrating high-load node pick the
// (replica, low-load node) pair with the maximum positive gain and
// migrate it. It returns the migrations performed (already applied to
// the pool model). Nodes touched by a migration are marked Migrating
// and skipped for the rest of the pass; call ClearMigrating when the
// physical data movement completes.
func (p *Pool) ReschedulePass(theta float64) []Migration {
	var out []Migration
	for _, res := range []Resource{RU, Storage, Heat} {
		low, _, high := p.Division(res, theta)
		R, S := p.OptimalLoad()
		H := p.OptimalHeat()
		for _, src := range high {
			if src.Migrating {
				continue
			}
			var bestRe *Replica
			var bestDst *Node
			bestGain := 0.0
			// Deterministic replica order.
			reps := src.Replicas()
			sort.Slice(reps, func(i, j int) bool { return reps[i].ID < reps[j].ID })
			for _, re := range reps {
				for _, dst := range low {
					if dst.Migrating || !CanPlace(re, dst) {
						continue
					}
					if g := Gain(re, dst, R, S, H); g > bestGain {
						bestRe, bestDst, bestGain = re, dst, g
					}
				}
			}
			if bestGain > 0 {
				out = append(out, Migration{
					ReplicaID: bestRe.ID,
					Tenant:    bestRe.Tenant,
					From:      src.ID,
					To:        bestDst.ID,
					Resource:  res,
					Gain:      bestGain,
				})
				src.remove(bestRe)
				bestDst.add(bestRe)
				src.Migrating = true
				bestDst.Migrating = true
			}
		}
	}
	return out
}

// ClearMigrating resets all in-flight markers (the physical migrations
// completed).
func (p *Pool) ClearMigrating() {
	for _, n := range p.nodes {
		n.Migrating = false
	}
}

// RescheduleToConvergence runs passes (clearing migration markers
// between them) until no pass produces a migration or maxPasses is
// reached. It returns all migrations in order.
func (p *Pool) RescheduleToConvergence(theta float64, maxPasses int) []Migration {
	var all []Migration
	for i := 0; i < maxPasses; i++ {
		p.ClearMigrating()
		ms := p.ReschedulePass(theta)
		if len(ms) == 0 {
			break
		}
		all = append(all, ms...)
	}
	p.ClearMigrating()
	return all
}

// BalanceReplicaCounts is phase 1 of intra-pool rescheduling (§5.3):
// it evens out each tenant's replica count across nodes. It returns
// the migrations applied.
func (p *Pool) BalanceReplicaCounts() []Migration {
	// Count replicas per tenant.
	tenants := map[string][]*Replica{}
	for _, n := range p.nodes {
		for _, r := range n.replicas {
			tenants[r.Tenant] = append(tenants[r.Tenant], r)
		}
	}
	nodes := p.Nodes()
	if len(nodes) == 0 {
		return nil
	}
	var out []Migration
	tenantNames := make([]string, 0, len(tenants))
	for t := range tenants {
		tenantNames = append(tenantNames, t)
	}
	sort.Strings(tenantNames)
	for _, tenant := range tenantNames {
		reps := tenants[tenant]
		ceil := int(math.Ceil(float64(len(reps)) / float64(len(nodes))))
		for {
			// Find the most and least loaded node for this tenant.
			counts := map[*Node]int{}
			for _, r := range reps {
				counts[r.node]++
			}
			var maxN, minN *Node
			maxC, minC := -1, math.MaxInt32
			for _, n := range nodes {
				c := counts[n]
				if c > maxC {
					maxN, maxC = n, c
				}
				if c < minC {
					minN, minC = n, c
				}
			}
			if maxC <= ceil && maxC-minC <= 1 {
				break
			}
			// Move one of the tenant's replicas from maxN to minN.
			moved := false
			reps2 := maxN.Replicas()
			sort.Slice(reps2, func(i, j int) bool { return reps2[i].ID < reps2[j].ID })
			for _, r := range reps2 {
				if r.Tenant != tenant || minN.hostsPartition(r.Partition, r) {
					continue
				}
				maxN.remove(r)
				minN.add(r)
				out = append(out, Migration{
					ReplicaID: r.ID, Tenant: tenant,
					From: maxN.ID, To: minN.ID, Resource: RU,
				})
				moved = true
				break
			}
			if !moved {
				break
			}
		}
	}
	return out
}

// StdDevs returns the population standard deviation of RU and storage
// utilization across the pool's nodes — the metric Figure 9 reports.
func (p *Pool) StdDevs() (ruStd, stoStd float64) {
	nodes := p.Nodes()
	if len(nodes) == 0 {
		return 0, 0
	}
	var ruVals, stoVals []float64
	for _, n := range nodes {
		ruVals = append(ruVals, n.RUUtil())
		stoVals = append(stoVals, n.StoUtil())
	}
	return std(ruVals), std(stoVals)
}

func std(vs []float64) float64 {
	var mean float64
	for _, v := range vs {
		mean += v
	}
	mean /= float64(len(vs))
	var sum float64
	for _, v := range vs {
		d := v - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(vs)))
}

// MaxAvgRUUtil returns the maximum and average RU utilization across
// nodes — the convergence metric Figure 10 plots.
func (p *Pool) MaxAvgRUUtil() (maxU, avgU float64) {
	nodes := p.Nodes()
	if len(nodes) == 0 {
		return 0, 0
	}
	for _, n := range nodes {
		u := n.RUUtil()
		if u > maxU {
			maxU = u
		}
		avgU += u
	}
	avgU /= float64(len(nodes))
	return maxU, avgU
}

// RebalancePools implements inter-pool rescheduling (§5.3): vacate
// numNodes low-utilization nodes from the lower-loaded pool (migrating
// their replicas to the rest of that pool), reassign the vacated nodes
// to the higher-loaded pool, then rebalance both pools intra-pool.
// It returns the IDs of the transferred nodes.
func RebalancePools(poolH, poolL *Pool, numNodes int, theta float64) ([]string, error) {
	nodes := poolL.Nodes()
	if numNodes >= len(nodes) {
		numNodes = len(nodes) - 1
	}
	if numNodes <= 0 {
		return nil, nil
	}
	// Lowest-utilization nodes first.
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].RUUtil()+nodes[i].StoUtil() < nodes[j].RUUtil()+nodes[j].StoUtil()
	})
	var moved []string
	for _, victim := range nodes[:numNodes] {
		// Drain the victim: place each replica on the best remaining node.
		R, S := poolL.OptimalLoad()
		H := poolL.OptimalHeat()
		for _, re := range victim.Replicas() {
			var best *Node
			bestLoss := math.Inf(1)
			for _, cand := range poolL.Nodes() {
				if cand == victim || !CanPlace(re, cand) {
					continue
				}
				// Loss of the candidate after hypothetically adding re.
				victim.remove(re)
				cand.add(re)
				l := Loss(cand, R, S, H)
				cand.remove(re)
				victim.add(re)
				if l < bestLoss {
					best, bestLoss = cand, l
				}
			}
			if best == nil {
				continue // stays on victim; node cannot be vacated fully
			}
			victim.remove(re)
			best.add(re)
		}
		if victim.NumReplicas() > 0 {
			continue // couldn't vacate; skip it
		}
		n, err := poolL.RemoveNode(victim.ID)
		if err != nil {
			return moved, err
		}
		poolH.AddNode(n)
		moved = append(moved, n.ID)
	}
	poolH.RescheduleToConvergence(theta, 50)
	poolL.RescheduleToConvergence(theta, 50)
	return moved, nil
}

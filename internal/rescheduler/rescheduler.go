package rescheduler

import (
	"fmt"
	"math"
	"sort"
)

// Vec24 is an hour-of-day load vector (§5.3 Load Indicator).
type Vec24 [24]float64

// Max returns the vector's maximum component.
func (v Vec24) Max() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Add returns v + w component-wise.
func (v Vec24) Add(w Vec24) Vec24 {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns v − w component-wise.
func (v Vec24) Sub(w Vec24) Vec24 {
	for i := range v {
		v[i] -= w[i]
	}
	return v
}

// Flat returns a vector with every component set to x.
func Flat(x float64) Vec24 {
	var v Vec24
	for i := range v {
		v[i] = x
	}
	return v
}

// Replica is one partition replica's load profile.
type Replica struct {
	// ID must be unique within the pool (e.g. "tenant/partition/replica").
	ID string
	// Tenant owns the replica (phase-1 balance and CanPlace).
	Tenant string
	// Partition identifies the partition (a node must not hold two
	// replicas of the same partition).
	Partition string
	// RU is the hour-of-day RU load vector (7-day max per hour).
	RU Vec24
	// Storage is the replica's storage footprint.
	Storage float64
	// Heat is the replica's observed access rate (ops/sec, decayed) as
	// aggregated by the MetaServer from the data plane's per-partition
	// heat meters. Zero for followers and for pools built without heat
	// telemetry, in which case scoring reduces to RU + storage.
	Heat float64

	node *Node
}

// Node returns the node currently hosting the replica.
func (r *Replica) Node() *Node { return r.node }

// Node is a DataNode's load bookkeeping.
type Node struct {
	ID string
	// RUCap and StoCap are the node's capacities.
	RUCap  float64
	StoCap float64
	// Migrating marks an in-flight migration involving this node;
	// Algorithm 2 skips such nodes.
	Migrating bool

	replicas map[string]*Replica
	ruLoad   Vec24
	stoLoad  float64
	heatLoad float64
}

// NewNode returns an empty node with the given capacities.
func NewNode(id string, ruCap, stoCap float64) *Node {
	return &Node{ID: id, RUCap: ruCap, StoCap: stoCap, replicas: make(map[string]*Replica)}
}

// RULoad returns DN^ld_ru: the max over hours of the summed replica
// vectors.
func (n *Node) RULoad() float64 { return n.ruLoad.Max() }

// StoLoad returns the summed storage footprint.
func (n *Node) StoLoad() float64 { return n.stoLoad }

// RUUtil returns RU load over capacity.
func (n *Node) RUUtil() float64 {
	if n.RUCap == 0 {
		return 0
	}
	return n.RULoad() / n.RUCap
}

// StoUtil returns storage load over capacity.
func (n *Node) StoUtil() float64 {
	if n.StoCap == 0 {
		return 0
	}
	return n.stoLoad / n.StoCap
}

// HeatLoad returns the summed replica heat (ops/sec).
func (n *Node) HeatLoad() float64 { return n.heatLoad }

// HeatUtil returns heat load normalized by the node's RU capacity —
// heat (ops/sec) and RU/s capacity share a scale, so the ratio plays
// the same role utilization does for the other dimensions.
func (n *Node) HeatUtil() float64 {
	if n.RUCap == 0 {
		return 0
	}
	return n.heatLoad / n.RUCap
}

// Replicas returns the hosted replicas (unordered).
func (n *Node) Replicas() []*Replica {
	out := make([]*Replica, 0, len(n.replicas))
	for _, r := range n.replicas {
		out = append(out, r)
	}
	return out
}

// NumReplicas returns the hosted replica count.
func (n *Node) NumReplicas() int { return len(n.replicas) }

func (n *Node) add(r *Replica) {
	n.replicas[r.ID] = r
	n.ruLoad = n.ruLoad.Add(r.RU)
	n.stoLoad += r.Storage
	n.heatLoad += r.Heat
	r.node = n
}

func (n *Node) remove(r *Replica) {
	delete(n.replicas, r.ID)
	n.ruLoad = n.ruLoad.Sub(r.RU)
	n.stoLoad -= r.Storage
	n.heatLoad -= r.Heat
	r.node = nil
}

func (n *Node) hostsPartition(partition string, except *Replica) bool {
	for _, r := range n.replicas {
		if r != except && r.Partition == partition {
			return true
		}
	}
	return false
}

// Pool is one resource pool's load model.
type Pool struct {
	nodes map[string]*Node
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{nodes: make(map[string]*Node)} }

// AddNode registers a node.
func (p *Pool) AddNode(n *Node) { p.nodes[n.ID] = n }

// RemoveNode detaches a node (inter-pool reassignment). The node must
// be empty.
func (p *Pool) RemoveNode(id string) (*Node, error) {
	n, ok := p.nodes[id]
	if !ok {
		return nil, fmt.Errorf("rescheduler: unknown node %s", id)
	}
	if len(n.replicas) > 0 {
		return nil, fmt.Errorf("rescheduler: node %s not empty", id)
	}
	delete(p.nodes, id)
	return n, nil
}

// Node returns a node by ID (nil if absent).
func (p *Pool) Node(id string) *Node { return p.nodes[id] }

// Nodes returns all nodes sorted by ID (deterministic iteration).
func (p *Pool) Nodes() []*Node {
	out := make([]*Node, 0, len(p.nodes))
	for _, n := range p.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Place puts a replica on a node.
func (p *Pool) Place(r *Replica, nodeID string) error {
	n, ok := p.nodes[nodeID]
	if !ok {
		return fmt.Errorf("rescheduler: unknown node %s", nodeID)
	}
	if r.node != nil {
		r.node.remove(r)
	}
	n.add(r)
	return nil
}

// SetReplicaRU updates a replica's RU vector in place, keeping its
// hosting node's load sums consistent (online load drift).
func (p *Pool) SetReplicaRU(r *Replica, ru Vec24) {
	if r.node != nil {
		r.node.ruLoad = r.node.ruLoad.Sub(r.RU)
		r.node.ruLoad = r.node.ruLoad.Add(ru)
	}
	r.RU = ru
}

// SetReplicaStorage updates a replica's storage footprint in place.
func (p *Pool) SetReplicaStorage(r *Replica, sto float64) {
	if r.node != nil {
		r.node.stoLoad += sto - r.Storage
	}
	r.Storage = sto
}

// SetReplicaHeat updates a replica's heat in place, keeping its node's
// heat sum consistent (online telemetry refresh between passes).
func (p *Pool) SetReplicaHeat(r *Replica, heat float64) {
	if r.node != nil {
		r.node.heatLoad += heat - r.Heat
	}
	r.Heat = heat
}

// OptimalLoad returns ⟨R,S⟩: pool RU load over pool RU capacity, and
// pool storage load over pool storage capacity.
func (p *Pool) OptimalLoad() (R, S float64) {
	var ruLoad Vec24
	var sto, ruCap, stoCap float64
	for _, n := range p.nodes {
		ruLoad = ruLoad.Add(n.ruLoad)
		sto += n.stoLoad
		ruCap += n.RUCap
		stoCap += n.StoCap
	}
	if ruCap > 0 {
		R = ruLoad.Max() / ruCap
	}
	if stoCap > 0 {
		S = sto / stoCap
	}
	return R, S
}

// OptimalHeat returns the pool's balanced heat utilization: total heat
// over total RU capacity (the per-node target for HeatUtil).
func (p *Pool) OptimalHeat() float64 {
	var heat, ruCap float64
	for _, n := range p.nodes {
		heat += n.heatLoad
		ruCap += n.RUCap
	}
	if ruCap <= 0 {
		return 0
	}
	return heat / ruCap
}

// Loss is the L2-norm deviation of a node's utilization from the
// optimal load ⟨R,S,H⟩ (§5.3 Migration Gain, extended with the heat
// dimension). Pools without heat telemetry have H and every HeatUtil
// at zero, reducing Loss to the paper's two-dimensional form.
func Loss(n *Node, R, S, H float64) float64 {
	dr := n.RUUtil() - R
	ds := n.StoUtil() - S
	dh := n.HeatUtil() - H
	return math.Sqrt(dr*dr + ds*ds + dh*dh)
}

// Gain quantifies migrating replica re to dst: the reduction of the
// max loss across the source and destination nodes (§5.3).
func Gain(re *Replica, dst *Node, R, S, H float64) float64 {
	src := re.node
	if src == nil || src == dst {
		return 0
	}
	before := math.Max(Loss(src, R, S, H), Loss(dst, R, S, H))
	// Simulate the move.
	src.remove(re)
	dst.add(re)
	after := math.Max(Loss(src, R, S, H), Loss(dst, R, S, H))
	// Revert.
	dst.remove(re)
	src.add(re)
	return before - after
}

// Resource selects the balancing dimension.
type Resource int

// Balancing dimensions.
const (
	RU Resource = iota
	Storage
	// Heat balances observed partition access rates, so a node packed
	// with hot partitions sheds them even when its RU accounting and
	// storage look even.
	Heat
)

// MinHeatForRebalance is the per-node average heat (ops/sec) below
// which the Heat dimension considers the pool balanced: migrations are
// physical data moves and must not be triggered by a handful of reads
// on an otherwise idle cluster.
const MinHeatForRebalance = 1.0

// String names the resource.
func (r Resource) String() string {
	switch r {
	case Storage:
		return "Storage"
	case Heat:
		return "Heat"
	default:
		return "RU"
	}
}

func (n *Node) util(res Resource) float64 {
	switch res {
	case Storage:
		return n.StoUtil()
	case Heat:
		return n.HeatUtil()
	default:
		return n.RUUtil()
	}
}

// Division splits the pool's nodes into low/medium/high load groups
// around the optimal load with threshold θ (§5.3 DataNode Division).
func (p *Pool) Division(res Resource, theta float64) (low, medium, high []*Node) {
	R, S := p.OptimalLoad()
	target := R
	switch res {
	case Storage:
		target = S
	case Heat:
		// Dead-band: physical replica moves must not chase noise-level
		// heat. A pool averaging under MinHeatForRebalance ops/s per
		// node is balanced by definition for this dimension.
		var total float64
		for _, n := range p.nodes {
			total += n.heatLoad
		}
		if total < MinHeatForRebalance*float64(len(p.nodes)) {
			return nil, p.Nodes(), nil
		}
		target = p.OptimalHeat()
	}
	for _, n := range p.Nodes() {
		u := n.util(res)
		switch {
		case u <= target-theta:
			low = append(low, n)
		case u <= target:
			medium = append(medium, n)
		default:
			high = append(high, n)
		}
	}
	return low, medium, high
}

package rescheduler

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestVec24(t *testing.T) {
	a := Flat(2)
	b := Flat(3)
	if a.Add(b).Max() != 5 || b.Sub(a).Max() != 1 {
		t.Fatal("vector arithmetic wrong")
	}
	var v Vec24
	v[7] = 9
	if v.Max() != 9 {
		t.Fatal("Max wrong")
	}
}

func mkReplica(id, tenant string, ru, sto float64) *Replica {
	return &Replica{ID: id, Tenant: tenant, Partition: id, RU: Flat(ru), Storage: sto}
}

func TestNodeLoadBookkeeping(t *testing.T) {
	n := NewNode("n1", 100, 1000)
	p := NewPool()
	p.AddNode(n)
	r := mkReplica("t1/0/0", "t1", 10, 200)
	p.Place(r, "n1")
	if n.RULoad() != 10 || n.StoLoad() != 200 {
		t.Fatalf("load = %v/%v", n.RULoad(), n.StoLoad())
	}
	if n.RUUtil() != 0.1 || n.StoUtil() != 0.2 {
		t.Fatalf("util = %v/%v", n.RUUtil(), n.StoUtil())
	}
	if r.Node() != n || n.NumReplicas() != 1 {
		t.Fatal("placement bookkeeping wrong")
	}
}

func TestPlaceMovesBetweenNodes(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 100))
	p.AddNode(NewNode("b", 100, 100))
	r := mkReplica("t1/0/0", "t1", 10, 10)
	p.Place(r, "a")
	p.Place(r, "b")
	if p.Node("a").NumReplicas() != 0 || p.Node("b").NumReplicas() != 1 {
		t.Fatal("move did not clean up source")
	}
}

func TestOptimalLoad(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 100))
	p.AddNode(NewNode("b", 100, 100))
	p.Place(mkReplica("r1", "t1", 50, 40), "a")
	R, S := p.OptimalLoad()
	if R != 0.25 { // 50 load / 200 capacity
		t.Fatalf("R = %v", R)
	}
	if S != 0.2 { // 40 / 200
		t.Fatalf("S = %v", S)
	}
}

func TestDivision(t *testing.T) {
	p := NewPool()
	for i := 0; i < 4; i++ {
		p.AddNode(NewNode(fmt.Sprintf("n%d", i), 100, 100))
	}
	p.Place(mkReplica("hot", "t1", 80, 10), "n0")
	p.Place(mkReplica("warm", "t2", 21, 10), "n1")
	// Optimal R = 101/400 ≈ 0.2525. θ=0.05: low ≤ 0.2025, high > 0.2525.
	low, med, high := p.Division(RU, 0.05)
	if len(high) != 1 || high[0].ID != "n0" {
		t.Fatalf("high = %v", ids(high))
	}
	if len(low) != 2 { // n2, n3 at 0
		t.Fatalf("low = %v", ids(low))
	}
	if len(med) != 1 || med[0].ID != "n1" {
		t.Fatalf("med = %v", ids(med))
	}
}

func ids(ns []*Node) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.ID)
	}
	return out
}

func TestGainPositiveForGoodMove(t *testing.T) {
	p := NewPool()
	a := NewNode("a", 100, 100)
	b := NewNode("b", 100, 100)
	p.AddNode(a)
	p.AddNode(b)
	r1 := mkReplica("r1", "t1", 40, 10)
	r2 := mkReplica("r2", "t2", 40, 10)
	p.Place(r1, "a")
	p.Place(r2, "a")
	R, S := p.OptimalLoad()
	if g := Gain(r2, b, R, S, p.OptimalHeat()); g <= 0 {
		t.Fatalf("gain = %v, want positive", g)
	}
	// Gain must not mutate state.
	if a.NumReplicas() != 2 || b.NumReplicas() != 0 {
		t.Fatal("Gain mutated the pool")
	}
}

func TestCanPlaceRejectsSamePartition(t *testing.T) {
	p := NewPool()
	a := NewNode("a", 100, 100)
	b := NewNode("b", 100, 100)
	p.AddNode(a)
	p.AddNode(b)
	r0 := &Replica{ID: "t1/0/0", Tenant: "t1", Partition: "t1/0", RU: Flat(1), Storage: 1}
	r1 := &Replica{ID: "t1/0/1", Tenant: "t1", Partition: "t1/0", RU: Flat(1), Storage: 1}
	p.Place(r0, "a")
	p.Place(r1, "b")
	if CanPlace(r0, b) {
		t.Fatal("CanPlace allowed two replicas of one partition on a node")
	}
}

func TestReschedulePassBalances(t *testing.T) {
	p := NewPool()
	for i := 0; i < 4; i++ {
		p.AddNode(NewNode(fmt.Sprintf("n%d", i), 100, 1000))
	}
	// All load on n0.
	for j := 0; j < 8; j++ {
		p.Place(mkReplica(fmt.Sprintf("t%d/0/0", j), fmt.Sprintf("t%d", j), 10, 50), "n0")
	}
	before, _ := p.StdDevs()
	ms := p.RescheduleToConvergence(0.05, 50)
	after, _ := p.StdDevs()
	if len(ms) == 0 {
		t.Fatal("no migrations proposed")
	}
	if after >= before {
		t.Fatalf("std did not improve: %v → %v", before, after)
	}
	// Paper: 74.5% RU std reduction on a dispersed pool; here demand a
	// strong reduction too.
	if after > 0.5*before {
		t.Fatalf("weak balancing: %v → %v", before, after)
	}
}

func TestReschedulePassMarksMigrating(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 100))
	p.AddNode(NewNode("b", 100, 100))
	p.Place(mkReplica("t1/0/0", "t1", 50, 10), "a")
	p.Place(mkReplica("t2/0/0", "t2", 50, 10), "a")
	ms := p.ReschedulePass(0.05)
	if len(ms) != 1 {
		t.Fatalf("migrations = %d", len(ms))
	}
	if !p.Node("a").Migrating || !p.Node("b").Migrating {
		t.Fatal("nodes not marked migrating")
	}
	// Second pass without clearing: both nodes busy → no migrations.
	if ms2 := p.ReschedulePass(0.05); len(ms2) != 0 {
		t.Fatalf("migrating nodes were used: %v", ms2)
	}
	p.ClearMigrating()
	if p.Node("a").Migrating {
		t.Fatal("ClearMigrating failed")
	}
}

func TestBalanceReplicaCounts(t *testing.T) {
	p := NewPool()
	for i := 0; i < 3; i++ {
		p.AddNode(NewNode(fmt.Sprintf("n%d", i), 1000, 1000))
	}
	// Tenant t1 has 6 replicas all on n0.
	for j := 0; j < 6; j++ {
		p.Place(&Replica{
			ID: fmt.Sprintf("t1/%d/0", j), Tenant: "t1",
			Partition: fmt.Sprintf("t1/%d", j), RU: Flat(1), Storage: 1,
		}, "n0")
	}
	ms := p.BalanceReplicaCounts()
	if len(ms) == 0 {
		t.Fatal("no balancing migrations")
	}
	for _, n := range p.Nodes() {
		if c := n.NumReplicas(); c != 2 {
			t.Fatalf("node %s has %d replicas, want 2", n.ID, c)
		}
	}
}

func TestRescheduleLargePoolReducesStd(t *testing.T) {
	// Figure 9 shape at reduced scale: 100 nodes, heterogeneous load.
	rng := rand.New(rand.NewSource(42))
	p := NewPool()
	for i := 0; i < 100; i++ {
		p.AddNode(NewNode(fmt.Sprintf("n%03d", i), 1000, 1000))
	}
	// 400 replicas with skewed initial placement (prefer low node IDs).
	for j := 0; j < 400; j++ {
		node := fmt.Sprintf("n%03d", rng.Intn(30)) // only first 30 nodes
		r := &Replica{
			ID:        fmt.Sprintf("t%d/%d/0", j%40, j),
			Tenant:    fmt.Sprintf("t%d", j%40),
			Partition: fmt.Sprintf("t%d/%d", j%40, j),
			RU:        Flat(rng.Float64() * 20),
			Storage:   rng.Float64() * 50,
		}
		p.Place(r, node)
	}
	ruBefore, stoBefore := p.StdDevs()
	p.RescheduleToConvergence(0.02, 200)
	ruAfter, stoAfter := p.StdDevs()
	if ruAfter > 0.35*ruBefore {
		t.Fatalf("RU std reduction too weak: %v → %v", ruBefore, ruAfter)
	}
	if stoAfter > 0.35*stoBefore {
		t.Fatalf("storage std reduction too weak: %v → %v", stoBefore, stoAfter)
	}
}

func TestMaxAvgRUUtil(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 100))
	p.AddNode(NewNode("b", 100, 100))
	p.Place(mkReplica("r", "t", 80, 0), "a")
	maxU, avgU := p.MaxAvgRUUtil()
	if maxU != 0.8 || avgU != 0.4 {
		t.Fatalf("max/avg = %v/%v", maxU, avgU)
	}
}

func TestRemoveNodeRequiresEmpty(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 100))
	p.Place(mkReplica("r", "t", 1, 1), "a")
	if _, err := p.RemoveNode("a"); err == nil {
		t.Fatal("removed non-empty node")
	}
	if _, err := p.RemoveNode("ghost"); err == nil {
		t.Fatal("removed unknown node")
	}
}

func TestRebalancePools(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// poolH overloaded (10 nodes, heavy), poolL underloaded (10 nodes, light).
	poolH, poolL := NewPool(), NewPool()
	for i := 0; i < 10; i++ {
		poolH.AddNode(NewNode(fmt.Sprintf("h%d", i), 100, 1000))
		poolL.AddNode(NewNode(fmt.Sprintf("l%d", i), 100, 1000))
	}
	for j := 0; j < 60; j++ {
		poolH.Place(&Replica{
			ID: fmt.Sprintf("ht%d/%d/0", j%10, j), Tenant: fmt.Sprintf("ht%d", j%10),
			Partition: fmt.Sprintf("ht%d/%d", j%10, j),
			RU:        Flat(10 + rng.Float64()*5), Storage: 50,
		}, fmt.Sprintf("h%d", j%10))
	}
	for j := 0; j < 10; j++ {
		poolL.Place(&Replica{
			ID: fmt.Sprintf("lt%d/%d/0", j, j), Tenant: fmt.Sprintf("lt%d", j),
			Partition: fmt.Sprintf("lt%d/%d", j, j),
			RU:        Flat(2), Storage: 10,
		}, fmt.Sprintf("l%d", j))
	}
	hBefore, _ := poolH.MaxAvgRUUtil()
	moved, err := RebalancePools(poolH, poolL, 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) == 0 {
		t.Fatal("no nodes transferred")
	}
	if len(poolH.Nodes()) != 10+len(moved) || len(poolL.Nodes()) != 10-len(moved) {
		t.Fatalf("node counts wrong: H=%d L=%d moved=%d",
			len(poolH.Nodes()), len(poolL.Nodes()), len(moved))
	}
	hAfter, _ := poolH.MaxAvgRUUtil()
	if hAfter >= hBefore {
		t.Fatalf("pool H max util did not improve: %v → %v", hBefore, hAfter)
	}
	// No replicas lost.
	total := 0
	for _, n := range append(poolH.Nodes(), poolL.Nodes()...) {
		total += n.NumReplicas()
	}
	if total != 70 {
		t.Fatalf("replicas lost: %d", total)
	}
}

func TestResourceString(t *testing.T) {
	if RU.String() != "RU" || Storage.String() != "Storage" {
		t.Fatal("Resource strings wrong")
	}
}

// TestHeatAwarePlacementShedsHotNode: a node packed with hot primaries
// must shed one even when RU accounting and storage look balanced —
// the heat dimension alone has to drive the move.
func TestHeatAwarePlacementShedsHotNode(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 1000))
	p.AddNode(NewNode("b", 100, 1000))
	for i := 0; i < 4; i++ {
		re := &Replica{ID: fmt.Sprintf("r%d", i), Tenant: "t", Partition: fmt.Sprint(i), Heat: 50}
		if err := p.Place(re, "a"); err != nil {
			t.Fatal(err)
		}
	}
	migs := p.ReschedulePass(0.2)
	if len(migs) != 1 {
		t.Fatalf("migrations = %d, want 1 (2-node pool, one pass)", len(migs))
	}
	if migs[0].From != "a" || migs[0].To != "b" || migs[0].Resource != Heat {
		t.Fatalf("migration = %+v, want a→b on Heat", migs[0])
	}
	// Convergence balances the heat load entirely (2 of 4 move).
	migs = p.RescheduleToConvergence(0.2, 10)
	a, b := p.Node("a"), p.Node("b")
	if a.HeatLoad() != 100 || b.HeatLoad() != 100 {
		t.Fatalf("heat after convergence: a=%v b=%v, want 100/100", a.HeatLoad(), b.HeatLoad())
	}
}

// TestHeatZeroKeepsLegacyBehavior: pools without heat telemetry must
// not reshuffle — Loss reduces to the paper's two-dimensional form.
func TestHeatZeroKeepsLegacyBehavior(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 1000))
	p.AddNode(NewNode("b", 100, 1000))
	for i := 0; i < 4; i++ {
		re := &Replica{ID: fmt.Sprintf("r%d", i), Tenant: "t", Partition: fmt.Sprint(i), RU: Flat(10)}
		if err := p.Place(re, "a"); err != nil {
			t.Fatal(err)
		}
	}
	withHeat := p.ReschedulePass(0.2)
	if len(withHeat) == 0 {
		t.Fatal("RU imbalance alone should still migrate")
	}
	if withHeat[0].Resource == Heat {
		t.Fatalf("resource = Heat on a heat-free pool: %+v", withHeat[0])
	}
	if h := p.OptimalHeat(); h != 0 {
		t.Fatalf("OptimalHeat = %v on heat-free pool", h)
	}
}

// TestSetReplicaHeatKeepsNodeSumsConsistent: online telemetry refresh
// must adjust the hosting node's aggregate in place.
func TestSetReplicaHeatKeepsNodeSumsConsistent(t *testing.T) {
	p := NewPool()
	p.AddNode(NewNode("a", 100, 1000))
	re := &Replica{ID: "r0", Tenant: "t", Partition: "0", Heat: 30}
	if err := p.Place(re, "a"); err != nil {
		t.Fatal(err)
	}
	p.SetReplicaHeat(re, 80)
	if got := p.Node("a").HeatLoad(); got != 80 {
		t.Fatalf("HeatLoad = %v, want 80", got)
	}
	if got := p.Node("a").HeatUtil(); got != 0.8 {
		t.Fatalf("HeatUtil = %v, want 0.8", got)
	}
}

// Package load type-checks Go packages for the abasecheck analyzers
// without depending on golang.org/x/tools. It resolves packages and
// their compiled export data through `go list -export -json -deps`
// (offline: the go command serves export data from the build cache)
// and imports dependencies with the standard library's gc export-data
// importer.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Dir is the package directory.
	Dir string
	// GoFiles are the parsed file names (absolute).
	GoFiles []string
	// Fset maps positions for Syntax.
	Fset *token.FileSet
	// Syntax holds the parsed files, with comments.
	Syntax []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// TypesInfo records type information for Syntax.
	TypesInfo *types.Info
	// IllTyped reports that type checking failed; Errors holds why.
	IllTyped bool
	// Errors holds parse and type errors.
	Errors []error
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching the go list
// patterns, resolved relative to dir. Dependencies are imported from
// export data; only the matched packages themselves are parsed.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	byPath := map[string]*listPkg{}
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		byPath[lp.ImportPath] = lp
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		if lp.ImportPath == "unsafe" || len(lp.GoFiles) == 0 {
			continue
		}
		pkg := check(lp, exportLookup(byPath, lp))
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// Files type-checks one synthetic package assembled from the given
// files (the analysistest loader). Imports must resolve within the
// build cache — in practice, standard library packages plus anything
// `go list` can name.
func Files(pkgPath string, filenames []string) (*Package, error) {
	fset := token.NewFileSet()
	pkg := &Package{PkgPath: pkgPath, Fset: fset, GoFiles: filenames}
	var imports []string
	seen := map[string]bool{}
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Syntax = append(pkg.Syntax, f)
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	byPath := map[string]*listPkg{}
	if len(imports) > 0 {
		args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, imports...)
		cmd := exec.Command("go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list (test imports): %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			lp := new(listPkg)
			if err := dec.Decode(lp); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			byPath[lp.ImportPath] = lp
		}
	}
	typecheck(pkg, exportLookup(byPath, nil))
	return pkg, nil
}

// check parses and type-checks one listed package.
func check(lp *listPkg, imp types.Importer) *Package {
	fset := token.NewFileSet()
	pkg := &Package{PkgPath: lp.ImportPath, Dir: lp.Dir, Fset: fset}
	if lp.Error != nil {
		pkg.IllTyped = true
		pkg.Errors = append(pkg.Errors, fmt.Errorf("%s", lp.Error.Err))
	}
	for _, name := range lp.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(lp.Dir, name)
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			pkg.IllTyped = true
			pkg.Errors = append(pkg.Errors, err)
			continue
		}
		pkg.Syntax = append(pkg.Syntax, f)
	}
	typecheck(pkg, imp)
	return pkg
}

// typecheck runs go/types over pkg.Syntax with the given importer.
func typecheck(pkg *Package, imp types.Importer) {
	pkg.TypesInfo = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			pkg.IllTyped = true
			pkg.Errors = append(pkg.Errors, err)
		},
	}
	tpkg, _ := conf.Check(pkg.PkgPath, pkg.Fset, pkg.Syntax, pkg.TypesInfo)
	pkg.Types = tpkg
}

// exportLookup returns an importer that resolves import paths (via
// lp's vendor ImportMap when present) to the export data files that
// `go list -export` reported.
func exportLookup(byPath map[string]*listPkg, lp *listPkg) types.Importer {
	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		dep, ok := byPath[path]
		if !ok || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	})
	return &mappingImporter{gc: gc, lp: lp}
}

// mappingImporter applies go list's ImportMap before delegating to the
// gc export-data importer, and short-circuits package unsafe.
type mappingImporter struct {
	gc types.Importer
	lp *listPkg
}

// Import implements types.Importer.
func (m *mappingImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if m.lp != nil {
		if mapped, ok := m.lp.ImportMap[path]; ok {
			path = mapped
		}
	}
	return m.gc.Import(path)
}

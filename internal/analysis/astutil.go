package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CalleeOf resolves the function or method a call expression invokes,
// or nil for indirect calls (function values, conversions, builtins).
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ExprKey renders an identifier or selector chain ("s.mu", "n.admit.q")
// as a stable string key, or "" when the expression is not a pure
// ident/selector chain (indexing, calls, literals).
func ExprKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	default:
		return ""
	}
}

// Terminates reports whether a statement unconditionally leaves the
// enclosing flow: return, panic, goto-free terminators only. Branch
// merges use it to exclude dead-ended paths.
func Terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		// break/continue leave the construct being merged.
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			// os.Exit, log.Fatal*, runtime.Goexit, t.Fatal*.
			name := fun.Sel.Name
			return name == "Exit" || name == "Goexit" || strings.HasPrefix(name, "Fatal")
		}
		return false
	case *ast.BlockStmt:
		return len(s.List) > 0 && Terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return Terminates(s.Body) && Terminates(s.Else)
	}
	return false
}

// FileOf returns the *ast.File containing pos, or nil.
func FileOf(files []*ast.File, pos token.Pos) *ast.File {
	for _, f := range files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

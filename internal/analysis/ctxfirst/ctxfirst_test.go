package ctxfirst_test

import (
	"testing"

	"abase/internal/analysis/analysistest"
	"abase/internal/analysis/ctxfirst"
)

func TestCtxFirst(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer,
		"abasecheck.test/ctxtest", "testdata/ctx.go")
}

// Package ctxfirst enforces the context-first API contract PR 5
// established: context.Context parameters come first, and a received
// context is threaded to callees rather than replaced with
// context.Background(). The protocol types (Client, Fleet, Proxy,
// Node) additionally may not hide context-accepting work behind
// exported methods that take none — that is how deadlines and
// cancellation silently stop propagating.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"abase/internal/analysis"
)

// protocolTypes are the request-plane types whose exported methods
// form the public operation surface. The contract: an exported method
// on one of these that reaches context-accepting callees must itself
// accept (and thread) a context.
var protocolTypes = map[string]bool{
	"Client": true,
	"Fleet":  true,
	"Proxy":  true,
	"Node":   true,
}

// Analyzer is the ctxfirst checker.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context parameters come first and received contexts are threaded\n\n" +
		"Three rules: (1) any function taking a context.Context takes it as its\n" +
		"first parameter; (2) code with a context in scope must not synthesize\n" +
		"context.Background()/TODO() for a callee — that silently drops the\n" +
		"caller's deadline and cancellation; (3) an exported method on a\n" +
		"protocol type (Client/Fleet/Proxy/Node) that passes a fresh\n" +
		"Background/TODO context downstream must accept a context instead.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignature(pass, fd.Type)
			if fd.Body == nil {
				continue
			}
			checkBody(pass, fd, file)
		}
	}
	return nil, nil
}

// checkSignature reports a context parameter that is not first.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.Types[field.Type].Type
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if analysis.IsContextType(t) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter (found at position %d)", idx+1)
		}
		idx += n
	}
}

// checkBody flags context.Background()/TODO() calls made while a
// context is available — in the function's own parameters or any
// lexically enclosing function literal's.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, file *ast.File) {
	// ctxAvail tracks, per enclosing function nesting level, whether a
	// context parameter is in scope.
	avail := hasCtxParam(pass, fd.Type)
	exportedProtocol := isExportedProtocolMethod(pass, fd)
	var walk func(n ast.Node, avail bool)
	walk = func(n ast.Node, avail bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				walk(n.Body, avail || hasCtxParam(pass, n.Type))
				return false
			case *ast.CallExpr:
				fn := analysis.CalleeOf(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() != "Background" && fn.Name() != "TODO" {
					return true
				}
				switch {
				case avail:
					pass.Reportf(n.Pos(),
						"context.%s() discards the context already in scope; thread the caller's context instead",
						fn.Name())
				case exportedProtocol:
					pass.Reportf(n.Pos(),
						"exported method %s.%s synthesizes context.%s(); it must accept a context.Context (first parameter) and thread it",
						recvTypeName(pass, fd), fd.Name.Name, fn.Name())
				}
			}
			return true
		})
	}
	walk(fd.Body, avail)
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if analysis.IsContextType(pass.TypesInfo.Types[field.Type].Type) {
			return true
		}
	}
	return false
}

// isExportedProtocolMethod reports whether fd is an exported method on
// one of the protocol types.
func isExportedProtocolMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	return fd.Name.IsExported() && protocolTypes[recvTypeName(pass, fd)]
}

// recvTypeName returns the name of fd's receiver type, or "".
func recvTypeName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// Golden file for ctxfirst: context-first signatures, no synthesized
// Background/TODO while a context is in scope, and protocol types
// (Client, ...) may not hide context work behind context-free exported
// methods.
package ctxtest

import "context"

type Client struct{}

func (c *Client) do(ctx context.Context) error { return ctx.Err() }

// Rule 1: context.Context must come first.
func query(name string, ctx context.Context) error { // want "context.Context must be the first parameter"
	_ = name
	return ctx.Err()
}

// Rule 2: a context in scope must be threaded, not replaced.
func lookup(ctx context.Context, c *Client) error {
	return c.do(context.Background()) // want "discards the context already in scope"
}

// Rule 2 reaches into function literals that inherit the context.
func spawn(ctx context.Context, c *Client) {
	go func() {
		_ = c.do(context.TODO()) // want "discards the context already in scope"
	}()
}

// Rule 3: an exported protocol-type method may not synthesize a fresh
// context for downstream work.
func (c *Client) Ping() error {
	return c.do(context.Background()) // want "exported method Client.Ping synthesizes"
}

// Negative: threading the received context is the sanctioned shape.
func relay(ctx context.Context, c *Client) error {
	return c.do(ctx)
}

// Negative: an unexported helper on a non-protocol path may seed a
// fresh context (e.g. a background janitor's root).
type janitor struct{}

func (j *janitor) run(c *Client) error {
	return c.do(context.Background())
}

// Package lockdiscipline enforces mutex pairing and the +locked
// calling convention. A sync.Mutex/RWMutex acquired in a function must
// be released on every return path (directly or by defer), must not be
// re-acquired while held, and a function documented as
//
//	// +locked:m.mu
//
// (it runs with m.mu already held — the repository's *Locked naming
// convention) must not lock m.mu itself and must only be called with
// the lock held.
//
// The checker walks each function's statement tree symbolically,
// branching at if/switch/select and excluding terminated paths from
// merges. Merging takes the intersection of held locks (definitely
// held), so conditional locking degrades to silence, never to false
// positives; functions using goto are skipped.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"abase/internal/analysis"
)

// Analyzer is the lockdiscipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "mutexes must be released on every return path; +locked contracts hold\n\n" +
		"Rules: a lock acquired in a function is released on all return paths\n" +
		"(or deferred); no re-lock of a held mutex (self-deadlock); a function\n" +
		"annotated '// +locked:x.mu' neither locks x.mu nor may be called\n" +
		"without it held; functions named *Locked carry the annotation.",
	Run: run,
}

// lockState tracks one mutex key on one path.
type lockState struct {
	write     int  // Lock depth (>1 is already reported)
	read      int  // RLock depth
	deferredW int  // deferred Unlock count
	deferredR int  // deferred RUnlock count
	seeded    bool // held by +locked contract, not required released
	fuzzy     bool // TryLock or divergent merge: stop judging this key
}

// state is the per-path lock environment.
type state map[string]*lockState

func (s state) get(key string) *lockState {
	ls, ok := s[key]
	if !ok {
		ls = &lockState{}
		s[key] = ls
	}
	return ls
}

func (s state) clone() state {
	out := make(state, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// merge folds other into s as the intersection of definitely-held
// locks, marking keys whose depth disagrees as fuzzy.
func (s state) merge(other state) {
	for k, ls := range s {
		o, ok := other[k]
		if !ok {
			o = &lockState{}
		}
		if o.write < ls.write {
			ls.write = o.write
			ls.fuzzy = true
		}
		if o.read < ls.read {
			ls.read = o.read
			ls.fuzzy = true
		}
		ls.deferredW = min(ls.deferredW, o.deferredW)
		ls.deferredR = min(ls.deferredR, o.deferredR)
		ls.fuzzy = ls.fuzzy || o.fuzzy
	}
	for k, o := range other {
		if _, ok := s[k]; !ok && (o.write > 0 || o.read > 0 || o.fuzzy) {
			c := *o
			c.fuzzy = true
			c.write, c.read = 0, 0
			s[k] = &c
		}
	}
}

// contract is one +locked requirement on a function: the lock path
// relative to the receiver (recvIdx >= 0) or an absolute package-level
// path (recvIdx < 0).
type contract struct {
	relPath string // e.g. "mu" or "db.mu" (after the receiver), or full path
	viaRecv bool
}

var lockedRe = regexp.MustCompile(`\+locked:([A-Za-z_][A-Za-z0-9_.]*)`)

func run(pass *analysis.Pass) (interface{}, error) {
	contracts := collectContracts(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, contracts)
			// Function literals are independent scopes: a goroutine or
			// callback must satisfy the discipline on its own.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w := newWalker(pass, contracts)
					w.walkFunc(fl.Body, nil)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// collectContracts maps each declared function to its +locked
// requirements and reports *Locked functions missing the annotation.
func collectContracts(pass *analysis.Pass) map[*types.Func][]contract {
	out := map[*types.Func][]contract{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			var cs []contract
			if fd.Doc != nil {
				for _, m := range lockedRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
					path := m[1]
					recv := recvName(fd)
					if recv != "" && strings.HasPrefix(path, recv+".") {
						cs = append(cs, contract{relPath: strings.TrimPrefix(path, recv+"."), viaRecv: true})
					} else {
						cs = append(cs, contract{relPath: path})
					}
				}
			}
			if len(cs) == 0 && strings.HasSuffix(fd.Name.Name, "Locked") && usesSyncLocks(pass, fd) {
				pass.Reportf(fd.Name.Pos(),
					"%s is named *Locked but carries no '// +locked:<mutex>' contract; document which lock the caller must hold",
					fd.Name.Name)
			}
			out[fn] = cs
		}
	}
	return out
}

// usesSyncLocks reports whether the function's package even mentions a
// sync mutex in the receiver type — the *Locked naming rule only
// applies where there is a lock to hold. (Conservative: methods whose
// receiver struct has no mutex field anywhere are skipped.)
func usesSyncLocks(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true // package-level *Locked helper: still must document
	}
	t := pass.TypesInfo.Types[fd.Recv.List[0].Type].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// checkFunc walks one declared function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, contracts map[*types.Func][]contract) {
	w := newWalker(pass, contracts)
	seed := state{}
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn != nil {
		for _, c := range contracts[fn] {
			key := c.relPath
			if c.viaRecv {
				recv := recvName(fd)
				if recv == "" {
					continue
				}
				key = recv + "." + c.relPath
			}
			ls := seed.get(key)
			ls.write = 1
			ls.seeded = true
		}
	}
	w.walkFunc(fd.Body, seed)
}

// recvName returns the receiver identifier of fd, or "".
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// walker carries the reporting context for one function body.
type walker struct {
	pass      *analysis.Pass
	contracts map[*types.Func][]contract
	bailed    bool // goto seen: abandon judgement
}

func newWalker(pass *analysis.Pass, contracts map[*types.Func][]contract) *walker {
	return &walker{pass: pass, contracts: contracts}
}

// walkFunc analyzes a function body seeded with st (nil = empty) and
// checks the implicit fallthrough return at the end.
func (w *walker) walkFunc(body *ast.BlockStmt, st state) {
	if st == nil {
		st = state{}
	}
	exits := w.walkStmts(body.List, st)
	if w.bailed {
		return
	}
	if !exits && len(body.List) > 0 {
		w.checkReturn(st, body.List[len(body.List)-1].End())
	}
}

// walkStmts walks a statement list, mutating st along the fallthrough
// path. It returns true when the list unconditionally terminates
// (return/panic), meaning st no longer flows anywhere.
func (w *walker) walkStmts(list []ast.Stmt, st state) bool {
	for _, stmt := range list {
		if w.bailed {
			return true
		}
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

// walkStmt processes one statement; true means flow terminates here.
func (w *walker) walkStmt(stmt ast.Stmt, st state) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.event(r, st)
		}
		w.checkReturn(st, s.Pos())
		return true
	case *ast.BranchStmt:
		if s.Tok.String() == "goto" {
			w.bailed = true
		}
		// break/continue end this path within the enclosing construct.
		return true
	case *ast.ExprStmt:
		w.event(s.X, st)
		return isPanic(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.event(rhs, st)
		}
		return false
	case *ast.DeferStmt:
		w.deferEvent(s.Call, st)
		return false
	case *ast.GoStmt:
		// The goroutine is its own scope (handled via FuncLit pass).
		return false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.event(s.Cond, st)
		thenSt := st.clone()
		thenExit := w.walkStmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseExit := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseExit = w.walkStmts(e.List, elseSt)
			case *ast.IfStmt:
				elseExit = w.walkStmt(e, elseSt)
			}
		}
		switch {
		case thenExit && elseExit:
			return true
		case thenExit:
			replace(st, elseSt)
		case elseExit:
			replace(st, thenSt)
		default:
			replace(st, thenSt)
			st.merge(elseSt)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.event(s.Cond, st)
		}
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		if s.Post != nil {
			w.walkStmt(s.Post, bodySt)
		}
		// Conservative: after the loop, only locks held both before and
		// after one iteration are definitely held.
		st.merge(bodySt)
		// A `for {}` with no condition only exits via break/return.
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.RangeStmt:
		w.event(s.X, st)
		bodySt := st.clone()
		w.walkStmts(s.Body.List, bodySt)
		st.merge(bodySt)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(stmt, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	case *ast.SendStmt:
		w.event(s.Value, st)
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return false
	}
	return false
}

// walkBranches handles switch/type-switch/select uniformly.
func (w *walker) walkBranches(stmt ast.Stmt, st state) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.event(s.Tag, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	var live []state
	allExit := len(clauses) > 0
	for _, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(c.Comm, st.clone())
			}
			body = c.Body
		}
		cs := st.clone()
		if !w.walkStmts(body, cs) {
			live = append(live, cs)
			allExit = false
		}
	}
	if _, isSelect := stmt.(*ast.SelectStmt); !hasDefault && !isSelect {
		// Without a default the switch may fall through unentered.
		live = append(live, st.clone())
		allExit = false
	}
	if allExit && len(clauses) > 0 {
		return true
	}
	if len(live) > 0 {
		replace(st, live[0])
		for _, other := range live[1:] {
			st.merge(other)
		}
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src state) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

// event scans an expression (not descending into FuncLits) for lock
// operations and +locked callee contracts.
func (w *walker) event(e ast.Expr, st state) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.callEvent(call, st)
		return true
	})
}

// callEvent applies one call's lock semantics to st.
func (w *walker) callEvent(call *ast.CallExpr, st state) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok {
		if op, key := w.lockOp(sel); op != "" && key != "" {
			w.applyOp(op, key, st, call)
			return
		}
	}
	// +locked contract check on direct callees in this package.
	fn := analysis.CalleeOf(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	cs, ok := w.contracts[fn]
	if !ok || len(cs) == 0 {
		return
	}
	for _, c := range cs {
		key := c.relPath
		if c.viaRecv {
			if sel == nil {
				continue
			}
			base := analysis.ExprKey(sel.X)
			if base == "" {
				continue
			}
			key = base + "." + c.relPath
		}
		ls, held := st[key]
		if !held || (ls.write == 0 && ls.read == 0 && !ls.fuzzy) {
			w.pass.Reportf(call.Pos(),
				"call to %s requires holding %s (+locked contract), which is not held on this path",
				fn.Name(), key)
		}
	}
}

// lockOp classifies a selector call as a sync lock operation,
// returning the op name and the mutex key ("" when not a lock op or
// the receiver is not a stable ident/selector chain).
func (w *walker) lockOp(sel *ast.SelectorExpr) (op, key string) {
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", ""
	}
	// The receiver must actually be a sync.Mutex/RWMutex value.
	tv, ok := w.pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", ""
	}
	return name, analysis.ExprKey(sel.X)
}

// applyOp mutates st for one lock operation and reports violations.
func (w *walker) applyOp(op, key string, st state, call *ast.CallExpr) {
	ls := st.get(key)
	if ls.fuzzy {
		return
	}
	switch op {
	case "Lock":
		if ls.write > 0 || ls.read > 0 {
			w.pass.Reportf(call.Pos(), "%s.Lock() while already holding %s on this path: self-deadlock", key, key)
		}
		ls.write++
	case "RLock":
		if ls.write > 0 {
			w.pass.Reportf(call.Pos(), "%s.RLock() while already holding %s.Lock() on this path: self-deadlock", key, key)
		}
		ls.read++
	case "Unlock":
		if ls.write == 0 && !ls.seeded {
			w.pass.Reportf(call.Pos(), "%s.Unlock() without a matching Lock() on this path", key)
			return
		}
		if ls.write > 0 {
			ls.write--
		}
	case "RUnlock":
		if ls.read == 0 && !ls.seeded {
			w.pass.Reportf(call.Pos(), "%s.RUnlock() without a matching RLock() on this path", key)
			return
		}
		if ls.read > 0 {
			ls.read--
		}
	case "TryLock", "TryRLock":
		ls.fuzzy = true
	}
}

// deferEvent registers deferred unlocks (direct or inside a deferred
// closure) and treats other deferred calls as ordinary events.
func (w *walker) deferEvent(call *ast.CallExpr, st state) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if op, key := w.lockOp(sel); key != "" {
			ls := st.get(key)
			switch op {
			case "Unlock":
				ls.deferredW++
			case "RUnlock":
				ls.deferredR++
			}
			return
		}
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok {
				if op, key := w.lockOp(sel); key != "" {
					ls := st.get(key)
					if op == "Unlock" {
						ls.deferredW++
					} else if op == "RUnlock" {
						ls.deferredR++
					}
				}
			}
			return true
		})
	}
}

// checkReturn reports locks still held (beyond deferred releases and
// seeds) at a return point.
func (w *walker) checkReturn(st state, at token.Pos) {
	for key, ls := range st {
		if ls.fuzzy || ls.seeded {
			continue
		}
		if ls.write > ls.deferredW {
			w.pass.Reportf(at, "returns while still holding %s (no Unlock on this path; add an unlock or defer)", key)
		}
		if ls.read > ls.deferredR {
			w.pass.Reportf(at, "returns while still holding %s.RLock (no RUnlock on this path; add an unlock or defer)", key)
		}
	}
}

// isPanic reports whether e is a call to panic.
func isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// hasBreak reports whether body contains a break at this loop's level.
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok.String() == "break" {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.FuncLit:
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}

// isMutexType reports whether t (or what it points to) is sync.Mutex
// or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

package lockdiscipline_test

import (
	"testing"

	"abase/internal/analysis/analysistest"
	"abase/internal/analysis/lockdiscipline"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer,
		"abasecheck.test/locktest", "testdata/lock.go")
}

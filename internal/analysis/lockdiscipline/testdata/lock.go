// Golden file for lockdiscipline: release on every return path, no
// re-lock while held, and honored +locked contracts.
package locktest

import "sync"

type table struct {
	mu sync.Mutex
	n  int
}

// leak forgets the unlock on its early-return path.
func (t *table) leak(cond bool) int {
	t.mu.Lock()
	if cond {
		return t.n // want "returns while still holding t.mu"
	}
	t.mu.Unlock()
	return 0
}

// relock acquires a mutex it already holds.
func (t *table) relock() {
	t.mu.Lock()
	t.mu.Lock() // want "self-deadlock"
	t.mu.Unlock()
	t.mu.Unlock()
}

// bumpLocked uses the naming convention without documenting which lock
// protects it.
func (t *table) bumpLocked() { // want "named .Locked but carries no"
	t.n++
}

// applyLocked folds delta into the counter. Caller synchronizes.
//
// +locked:t.mu
func (t *table) applyLocked(delta int) {
	t.n += delta
}

// misuse calls a +locked function without the contract's lock.
func (t *table) misuse(delta int) {
	t.applyLocked(delta) // want "requires holding t.mu"
}

// use is the sanctioned shape: acquire, defer release, call through.
func (t *table) use(delta int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.applyLocked(delta)
}

// balanced releases on both paths and stays silent.
func (t *table) balanced(cond bool) int {
	t.mu.Lock()
	if cond {
		t.mu.Unlock()
		return 1
	}
	t.mu.Unlock()
	return 0
}

// Package analysistest runs one analyzer over golden source files and
// checks its diagnostics against expectations written in the files
// themselves, mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	time.Sleep(d) // want "direct time.Sleep"
//
// Each `want "regexp"` comment demands one diagnostic on its line whose
// message matches the regexp. The test fails on any unmatched want and
// on any diagnostic no want expected — golden files therefore pin both
// that an analyzer fires and that it stays silent.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"abase/internal/analysis"
	"abase/internal/analysis/load"
)

// wantRe extracts `want "pattern"` expectations; the pattern may embed
// escaped quotes (\").
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads files as one synthetic package named pkgPath, runs analyzer
// a over it, and reports mismatches between the diagnostics produced
// and the files' want comments. File paths are relative to the test's
// working directory (the package directory under `go test`), so
// golden files live in testdata/ by convention. pkgPath is meaningful:
// path-gated analyzers (clockdiscipline) see it as the package's import
// path, so tests choose it to land inside or outside the gated tree.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string, files ...string) {
	t.Helper()
	abs := make([]string, len(files))
	for i, f := range files {
		p, err := filepath.Abs(f)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		abs[i] = p
	}
	pkg, err := load.Files(pkgPath, abs)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", pkgPath, err)
	}
	if pkg.IllTyped {
		t.Fatalf("analysistest: golden files do not type-check: %v", pkg.Errors)
	}

	wants := collectWants(t, pkg)
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if w.matched || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s",
				filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// collectWants parses the want comments out of the loaded syntax.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := strings.ReplaceAll(m[1], `\"`, `"`)
					re, err := regexp.Compile(pat)
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s:%d: bad want pattern %q: %v",
							filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					pos := pkg.Fset.Position(c.Pos())
					wants = append(wants, &want{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  pat,
					})
				}
			}
		}
	}
	return wants
}

// Golden file for rucharge: RU consumed by a limiter's Allow must be
// refunded on error returns that did no work, unless the return is
// deliberately annotated as keeping the charge.
package rutest

import "errors"

var errThrottled = errors.New("rutest: throttled")

type Bucket struct{ tokens float64 }

func (b *Bucket) Allow(cost float64) bool {
	if cost > b.tokens {
		return false
	}
	b.tokens -= cost
	return true
}

func (b *Bucket) Refund(cost float64) { b.tokens += cost }

func work() error { return nil }

// lose charges on admission, then loses the charge on the error path.
func lose(b *Bucket, cost float64) error {
	if !b.Allow(cost) {
		return errThrottled
	}
	if err := work(); err != nil {
		return err // want "loses the RU charged by Allow"
	}
	return nil
}

// refunds returns the tokens before surfacing the failure.
func refunds(b *Bucket, cost float64) error {
	if !b.Allow(cost) {
		return errThrottled
	}
	if err := work(); err != nil {
		b.Refund(cost)
		return err
	}
	return nil
}

// kept performed the work, so the charge deliberately stands.
func kept(b *Bucket, cost float64) error {
	if !b.Allow(cost) {
		return errThrottled
	}
	if err := work(); err != nil {
		// The engine executed the read; the failure reply still cost RU.
		return err // ru:final
	}
	return nil
}

// deferred covers all error returns with one deferred refund closure.
func deferred(b *Bucket, cost float64) (err error) {
	if !b.Allow(cost) {
		return errThrottled
	}
	defer func() {
		if err != nil {
			b.Refund(cost)
		}
	}()
	return work()
}

// Package rucharge enforces balanced RU accounting on request paths.
// Admission charges consume token-bucket RU up front
// (quota.ProxyLimiter.Allow / quota.PartitionLimiter.Allow); when the
// operation then fails before the work is performed, the tokens are
// gone and the tenant is billed for service it never received. The
// rule: after a successful Allow, every return path that yields a
// non-nil error must either refund (a call whose name contains
// "refund", directly or deferred) or carry an explicit
//
//	// ru:final
//
// annotation stating the charge intentionally stands (e.g. the
// downstream work was actually performed, or the charge IS the
// throttling signal).
package rucharge

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"abase/internal/analysis"
)

// Analyzer is the rucharge checker.
var Analyzer = &analysis.Analyzer{
	Name: "rucharge",
	Doc: "RU charged by limiter.Allow must be refunded or marked // ru:final on error returns\n\n" +
		"A successful Allow(cost) consumes tenant RU. An error return after it\n" +
		"without a refund call (name containing 'refund') silently bills the\n" +
		"tenant for work that never happened. Returns where the charge is\n" +
		"deliberate carry '// ru:final' on the return or its enclosing block.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	finals := finalLines(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, finals: finals}
			w.checkFunc(fd.Type, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					w := &walker{pass: pass, finals: finals}
					w.checkFunc(fl.Type, fl.Body)
					return false
				}
				return true
			})
		}
	}
	return nil, nil
}

// finalLines collects the file lines carrying a "ru:final" comment.
func finalLines(pass *analysis.Pass) map[string]map[int]bool {
	out := map[string]map[int]bool{}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, "ru:final") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m, ok := out[pos.Filename]
				if !ok {
					m = map[int]bool{}
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// chargeState is one path's accounting state.
type chargeState struct {
	// charge is the position of the live Allow charge (NoPos = none).
	charge token.Pos
	// deferredRefund reports a deferred refund covering all returns.
	deferredRefund bool
	// fuzzy abandons judgement (conditional charge shapes we don't model).
	fuzzy bool
}

type walker struct {
	pass    *analysis.Pass
	finals  map[string]map[int]bool
	results *ast.FieldList
}

// checkFunc walks one function body.
func (w *walker) checkFunc(ft *ast.FuncType, body *ast.BlockStmt) {
	if !returnsError(w.pass, ft) {
		// No error results: nothing to pair charges against. (Charges
		// that finish through callbacks are covered at the call sites
		// that return errors.)
		return
	}
	w.results = ft.Results
	st := &chargeState{}
	w.walkStmts(body.List, st)
}

// returnsError reports whether the function's last result is an error.
func returnsError(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	t := pass.TypesInfo.Types[last.Type].Type
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// walkStmts walks a list, returning true when flow terminates.
func (w *walker) walkStmts(list []ast.Stmt, st *chargeState) bool {
	for _, stmt := range list {
		if w.walkStmt(stmt, st) {
			return true
		}
	}
	return false
}

func (w *walker) walkStmt(stmt ast.Stmt, st *chargeState) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt:
		w.checkReturn(s, st)
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		w.scanExpr(s.X, st)
		return false
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.scanExpr(rhs, st)
		}
		return false
	case *ast.DeferStmt:
		if callMatches(s.Call, "refund") || deferredClosureRefunds(s.Call) {
			st.deferredRefund = true
		}
		return false
	case *ast.BlockStmt:
		return w.walkStmts(s.List, st)
	case *ast.IfStmt:
		return w.walkIf(s, st)
	case *ast.ForStmt:
		body := *st
		w.walkStmts(s.Body.List, &body)
		return false
	case *ast.RangeStmt:
		body := *st
		w.walkStmts(s.Body.List, &body)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(stmt, st)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, st)
	}
	return false
}

// walkIf handles the two charge idioms and general branching:
//
//	if cond && !limiter.Allow(cost) { return ErrThrottled }   // charge on fallthrough
//	if limiter.Allow(cost) { ...charged work... }             // charge in then-branch
func (w *walker) walkIf(s *ast.IfStmt, st *chargeState) bool {
	if s.Init != nil {
		w.walkStmt(s.Init, st)
	}
	negated, allowPos := allowInCond(w.pass, s.Cond, true)
	direct, allowPosDirect := allowInCond(w.pass, s.Cond, false)

	thenSt := *st
	if direct && !negated {
		thenSt.charge = allowPosDirect
	}
	thenExit := w.walkStmts(s.Body.List, &thenSt)

	elseSt := *st
	if negated {
		// The then-branch is the rejected path; the charge lands on the
		// fallthrough/else path.
		elseSt.charge = allowPos
	}
	elseExit := false
	if s.Else != nil {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseExit = w.walkStmts(e.List, &elseSt)
		case *ast.IfStmt:
			elseExit = w.walkStmt(e, &elseSt)
		}
	}
	switch {
	case thenExit && elseExit:
		return true
	case thenExit:
		*st = elseSt
	case elseExit:
		*st = thenSt
	default:
		merged := thenSt
		if thenSt != elseSt {
			// Keep a charge only when both paths carry it (definitely
			// charged); disagreement on anything else goes fuzzy.
			if thenSt.charge == token.NoPos || elseSt.charge == token.NoPos {
				merged.charge = token.NoPos
			}
			merged.deferredRefund = thenSt.deferredRefund && elseSt.deferredRefund
			merged.fuzzy = thenSt.fuzzy || elseSt.fuzzy
		}
		*st = merged
	}
	return false
}

func (w *walker) walkBranches(stmt ast.Stmt, st *chargeState) bool {
	var clauses []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	allExit := len(clauses) > 0
	for _, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		cs := *st
		if !w.walkStmts(body, &cs) {
			allExit = false
		}
	}
	return allExit && isExhaustive(stmt)
}

// isExhaustive reports whether the branch statement has a default (or
// is a select without one, which blocks).
func isExhaustive(stmt ast.Stmt) bool {
	var clauses []ast.Stmt
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		return true
	}
	for _, clause := range clauses {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// scanExpr records charges and refunds appearing in expression
// position (outside the if-condition idioms).
func (w *walker) scanExpr(e ast.Expr, st *chargeState) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isAllowCall(w.pass, call) {
			// An Allow outside the two if idioms (result stored, etc.):
			// we cannot track which branch is charged.
			st.fuzzy = true
		}
		if callMatches(call, "refund") {
			st.charge = token.NoPos
		}
		return true
	})
}

// checkReturn reports an error return that loses a live charge.
func (w *walker) checkReturn(s *ast.ReturnStmt, st *chargeState) {
	for _, r := range s.Results {
		w.scanExpr(r, st)
	}
	if st.charge == token.NoPos || st.fuzzy || st.deferredRefund {
		return
	}
	if len(s.Results) == 0 {
		return // bare return with named results: treated as success path
	}
	last := s.Results[len(s.Results)-1]
	if isNil(w.pass, last) {
		return
	}
	pos := w.pass.Fset.Position(s.Pos())
	if m, ok := w.finals[pos.Filename]; ok && (m[pos.Line] || m[pos.Line-1]) {
		return
	}
	chargeLine := w.pass.Fset.Position(st.charge).Line
	w.pass.Reportf(s.Pos(),
		"error return loses the RU charged by Allow at line %d: refund the charge or mark this return // ru:final",
		chargeLine)
}

// isNil reports whether e is the nil literal.
func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return id.Name == "nil" && (isNilObj || pass.TypesInfo.Uses[id] == nil)
}

// allowInCond scans a condition for a limiter Allow call, either
// negated (!x.Allow(c), possibly inside &&/|| chains) or direct.
func allowInCond(pass *analysis.Pass, cond ast.Expr, wantNegated bool) (bool, token.Pos) {
	found := false
	var pos token.Pos
	var scan func(e ast.Expr, negated bool)
	scan = func(e ast.Expr, negated bool) {
		switch e := ast.Unparen(e).(type) {
		case *ast.UnaryExpr:
			if e.Op == token.NOT {
				scan(e.X, !negated)
			}
		case *ast.BinaryExpr:
			if e.Op == token.LAND || e.Op == token.LOR {
				scan(e.X, negated)
				scan(e.Y, negated)
			}
		case *ast.CallExpr:
			if isAllowCall(pass, e) && negated == wantNegated {
				found = true
				pos = e.Pos()
			}
		}
	}
	scan(cond, false)
	return found, pos
}

// isAllowCall reports whether call is a method call named Allow on a
// limiter-shaped receiver (type named Bucket or *Limiter).
func isAllowCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Allow" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "Bucket" || strings.HasSuffix(name, "Limiter")
}

// callMatches reports whether the call's function name contains the
// fragment (case-insensitive): Refund, refundOnFailure, … all match.
func callMatches(call *ast.CallExpr, fragment string) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	return strings.Contains(strings.ToLower(name), fragment)
}

// deferredClosureRefunds reports whether a deferred closure contains a
// refund call.
func deferredClosureRefunds(call *ast.CallExpr) bool {
	fl, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && callMatches(c, "refund") {
			found = true
		}
		return true
	})
	return found
}

package rucharge_test

import (
	"testing"

	"abase/internal/analysis/analysistest"
	"abase/internal/analysis/rucharge"
)

func TestRUCharge(t *testing.T) {
	analysistest.Run(t, rucharge.Analyzer,
		"abasecheck.test/rutest", "testdata/ru.go")
}

// Package suite assembles the abasecheck analyzers. cmd/abasecheck
// and the analysis tests share this list so a checker cannot be wired
// into one but not the other.
package suite

import (
	"abase/internal/analysis"
	"abase/internal/analysis/clockdiscipline"
	"abase/internal/analysis/ctxfirst"
	"abase/internal/analysis/lockdiscipline"
	"abase/internal/analysis/rucharge"
	"abase/internal/analysis/sentinelis"
)

// Analyzers returns the full abasecheck suite, one analyzer per
// enforced invariant.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		clockdiscipline.Analyzer,
		ctxfirst.Analyzer,
		lockdiscipline.Analyzer,
		rucharge.Analyzer,
		sentinelis.Analyzer,
	}
}

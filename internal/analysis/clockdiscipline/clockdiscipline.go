// Package clockdiscipline enforces the simulation-determinism clock
// rule: internal packages must not read or wait on the system clock
// directly. PR 4's fault-injection layer and internal/sim replay
// scenarios on a virtual clock (internal/clock.Sim); one raw time.Now
// or time.Sleep in a participating package makes those runs
// nondeterministic again. All timing goes through an injected
// internal/clock.Clock.
package clockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"abase/internal/analysis"
)

// banned lists the time package functions that read or schedule on the
// system clock. time.Duration arithmetic, time.Time values, and
// constructors like time.Date are pure and stay allowed.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// exempt lists import-path fragments whose packages may touch the real
// clock: internal/clock is the single sanctioned wrapper (its Real
// implementation is the one place raw calls belong), and the analysis
// tree itself never runs under the simulated clock.
var exempt = []string{"internal/clock", "internal/analysis"}

// Analyzer is the clockdiscipline checker.
var Analyzer = &analysis.Analyzer{
	Name: "clockdiscipline",
	Doc: "internal packages must use internal/clock, not time.Now/Sleep/After/...\n\n" +
		"Packages under internal/ participate in deterministic simulation\n" +
		"(internal/sim, internal/faultinject): timing must flow through an\n" +
		"injected clock.Clock so a Sim clock controls it. Direct calls to the\n" +
		"system clock leak wall time into replayable runs.",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/") {
		return nil, nil
	}
	for _, frag := range exempt {
		if strings.Contains(path, frag) {
			return nil, nil
		}
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			// Methods such as (time.Time).After or (time.Time).Sub are
			// pure value arithmetic; only package-level functions touch
			// the system clock.
			if fn.Signature().Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(),
				"direct time.%s in internal package %s breaks simulation determinism; inject a clock.Clock (internal/clock) instead",
				fn.Name(), path)
			return true
		})
	}
	return nil, nil
}

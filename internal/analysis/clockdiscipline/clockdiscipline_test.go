package clockdiscipline_test

import (
	"testing"

	"abase/internal/analysis/analysistest"
	"abase/internal/analysis/clockdiscipline"
)

func TestFiresInInternalPackages(t *testing.T) {
	analysistest.Run(t, clockdiscipline.Analyzer,
		"abasecheck.test/internal/sim", "testdata/sim.go")
}

func TestSilentInClockPackage(t *testing.T) {
	analysistest.Run(t, clockdiscipline.Analyzer,
		"abasecheck.test/internal/clock/impl", "testdata/exempt.go")
}

func TestSilentOutsideInternal(t *testing.T) {
	analysistest.Run(t, clockdiscipline.Analyzer,
		"abasecheck.test/cmd/tool", "testdata/exempt.go")
}

// Golden file for clockdiscipline: loaded under a synthetic import
// path containing "internal/", where raw system-clock reads are banned.
package sim

import "time"

func drive() time.Duration {
	start := time.Now()            // want "direct time.Now in internal package"
	time.Sleep(time.Millisecond)   // want "direct time.Sleep in internal package"
	<-time.After(time.Millisecond) // want "direct time.After in internal package"
	return time.Since(start)       // want "direct time.Since in internal package"
}

func pure() bool {
	// Methods on time.Time are value arithmetic, not clock reads:
	// (time.Time).After/Sub/Before stay allowed.
	a := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b := a.Add(time.Hour)
	_ = b.Sub(a)
	return b.After(a)
}

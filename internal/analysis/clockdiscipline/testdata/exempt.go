// Golden file for clockdiscipline's scope gates: the same raw clock
// reads that fire in sim.go are loaded under exempt import paths (the
// sanctioned internal/clock wrapper, and a non-internal command) and
// must produce no diagnostics.
package clockimpl

import "time"

func now() time.Time { return time.Now() }

func wait(d time.Duration) { time.Sleep(d) }

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so checkers written here
// port directly onto the x/tools driver stack.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and flags
	// (lowercase, no spaces).
	Name string
	// Doc states the invariant the analyzer enforces. The first line is
	// the summary shown by `abasecheck -help`.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass) (interface{}, error)
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between the driver and one analyzer run over
// one package. A Pass is valid only during its Run call.
type Pass struct {
	// Analyzer is the checker being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type information for Files.
	TypesInfo *types.Info
	// Report delivers one finding to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Message states the violation and, where possible, the fix.
	Message string
}

// CommentMaps builds a per-file ast.CommentMap for annotation lookups
// (// ru:final, // +locked:…). Built lazily by analyzers that need
// statement-level comments.
func (p *Pass) CommentMaps() map[*ast.File]ast.CommentMap {
	m := make(map[*ast.File]ast.CommentMap, len(p.Files))
	for _, f := range p.Files {
		m[f] = ast.NewCommentMap(p.Fset, f, f.Comments)
	}
	return m
}

package sentinelis_test

import (
	"testing"

	"abase/internal/analysis/analysistest"
	"abase/internal/analysis/sentinelis"
)

func TestSentinelIs(t *testing.T) {
	analysistest.Run(t, sentinelis.Analyzer,
		"abasecheck.test/senttest", "testdata/sent.go")
}

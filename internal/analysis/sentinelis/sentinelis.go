// Package sentinelis enforces sentinel-error matching through
// errors.Is. The protocol sentinels (datanode.ErrNotPrimary,
// ErrStaleEpoch, ErrDeadlineShed, proxy.ErrThrottled, the re-exported
// client sentinels, …) are routinely wrapped with fmt.Errorf("%w")
// as they cross plane boundaries, so an == comparison that happens to
// work today silently stops matching the moment a layer adds context
// to the error. errors.Is is the only future-proof match.
package sentinelis

import (
	"go/ast"
	"go/token"
	"go/types"

	"abase/internal/analysis"
)

// Analyzer is the sentinelis checker.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelis",
	Doc: "sentinel errors must be matched with errors.Is, not == or switch\n\n" +
		"Package-level error variables named Err* are wrapped as they cross\n" +
		"plane boundaries (fmt.Errorf %w), so identity comparison breaks as\n" +
		"soon as any layer adds context. Compare with errors.Is(err, ErrX).",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if s := sentinel(pass.TypesInfo, operand); s != nil {
						pass.Reportf(n.Pos(),
							"comparing error with %s %s misses wrapped errors; use errors.Is(err, %s)",
							n.Op, s.Name(), s.Name())
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypesInfo.Types[n.Tag].Type) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinel(pass.TypesInfo, e); s != nil {
							pass.Reportf(e.Pos(),
								"switch on error compares %s by identity and misses wrapped errors; use switch { case errors.Is(err, %s): ... }",
								s.Name(), s.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// sentinel resolves e to a package-level error variable named Err*, or
// nil. The Err prefix is the repository convention for wrappable
// sentinels; stdlib identities like io.EOF (which decoders return
// unwrapped by contract) stay out of scope.
func sentinel(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if len(v.Name()) < 4 || v.Name()[:3] != "Err" {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

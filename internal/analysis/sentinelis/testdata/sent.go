// Golden file for sentinelis: package-level Err* sentinels must be
// matched with errors.Is, never identity comparison.
package senttest

import "errors"

var ErrMissing = errors.New("senttest: missing")

// errLocal is not exported-sentinel-shaped (no Err prefix as declared
// name pattern requires at least "Err" + one rune, lowercase here), so
// identity comparison is out of scope.
var errLocal = errors.New("senttest: local")

func classify(err error) int {
	if err == ErrMissing { // want "comparing error with == ErrMissing misses wrapped errors"
		return 1
	}
	if err != ErrMissing { // want "comparing error with != ErrMissing misses wrapped errors"
		return 2
	}
	switch err {
	case ErrMissing: // want "switch on error compares ErrMissing by identity"
		return 3
	}
	return 0
}

func sanctioned(err error) bool {
	// errors.Is survives fmt.Errorf("%w") wrapping at plane boundaries.
	if errors.Is(err, ErrMissing) {
		return true
	}
	// Identity against a non-sentinel stays silent.
	return err == errLocal
}

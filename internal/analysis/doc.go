// Package analysis is a self-contained static-analysis framework for
// abasecheck, the suite that mechanically enforces this repository's
// protocol invariants (context-first APIs, clock discipline, sentinel
// matching, lock pairing, and RU accounting).
//
// The types mirror the golang.org/x/tools/go/analysis vocabulary —
// Analyzer, Pass, Diagnostic — so the analyzers read like standard
// go/analysis checkers and can be ported onto x/tools with a one-line
// adapter when that dependency is available. This module is built
// offline against the standard library only, so the framework itself
// is implemented here: package loading goes through `go list -export`
// plus the gc export-data importer (see the load subpackage), and
// golden-file testing through the analysistest subpackage.
//
// The analyzers live in subpackages (ctxfirst, clockdiscipline,
// sentinelis, lockdiscipline, rucharge), are assembled by the suite
// subpackage, and are driven by cmd/abasecheck — standalone over `go
// list` patterns or as a `go vet -vettool`.
package analysis

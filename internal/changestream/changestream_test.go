package changestream

import (
	"errors"
	"strings"
	"testing"
)

func TestTokenRoundTrip(t *testing.T) {
	cases := []Token{
		{Tenant: "acme", Positions: []uint64{0, 0, 0, 0}},
		{Tenant: "acme", Positions: []uint64{1, 99, 0, 1 << 60}},
		{Tenant: "", Positions: nil},
		{Tenant: "t", Positions: []uint64{42}},
	}
	for _, tok := range cases {
		enc := tok.Encode()
		if !strings.HasPrefix(enc, "cs1.") {
			t.Fatalf("encoded token %q missing version prefix", enc)
		}
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if got.Tenant != tok.Tenant || len(got.Positions) != len(tok.Positions) {
			t.Fatalf("round trip %+v -> %+v", tok, got)
		}
		for i := range tok.Positions {
			if got.Positions[i] != tok.Positions[i] {
				t.Fatalf("round trip %+v -> %+v", tok, got)
			}
		}
	}
}

func TestTokenDecodeRejectsMalformed(t *testing.T) {
	good := Token{Tenant: "acme", Positions: []uint64{7, 8}}.Encode()
	bad := []string{
		"",
		"cs1",
		"cs2." + good[4:],                  // wrong version
		"p0:deadbeef",                      // a SCAN cursor, not a token
		"cs1.!!!not-base64!!!",             // bad alphabet
		"cs1.",                             // empty payload
		"cs1.AAAA",                         // too short for a checksum
		good[:len(good)-2],                 // truncated
		good + "AB",                        // trailing garbage
		"cs1." + strings.Repeat("A", 2000), // big zero payload: checksum fails
	}
	for _, s := range bad {
		if _, err := Decode(s); !errors.Is(err, ErrBadToken) {
			t.Fatalf("Decode(%q) = %v, want ErrBadToken", s, err)
		}
	}
	// Corrupt one payload byte: the checksum must catch it rather than
	// let the token resume at a wrong offset.
	raw := []byte(good)
	raw[len(raw)-6] ^= 0x41
	if _, err := Decode(string(raw)); !errors.Is(err, ErrBadToken) {
		t.Fatalf("corrupted token decoded: %v", err)
	}
}

func TestTokenExtend(t *testing.T) {
	tok := Token{Tenant: "a", Positions: []uint64{5, 6}}
	ext := tok.Extend(4)
	if len(ext.Positions) != 4 || ext.Positions[0] != 5 || ext.Positions[1] != 6 || ext.Positions[2] != 0 || ext.Positions[3] != 0 {
		t.Fatalf("Extend = %+v", ext)
	}
	// Extending to fewer partitions never shrinks.
	same := tok.Extend(1)
	if len(same.Positions) != 2 {
		t.Fatalf("Extend shrank the vector: %+v", same)
	}
}

func TestErrHistoryTruncatedIsEngineSentinel(t *testing.T) {
	// The re-export must match the engine's sentinel through errors.Is
	// so any layer can check either name.
	if !errors.Is(ErrHistoryTruncated, ErrHistoryTruncated) {
		t.Fatal("self identity failed")
	}
}

// Package changestream defines the shared vocabulary of the
// change-data-capture subsystem: the event type delivered to
// subscribers, the opaque resume token that positions a subscription
// in every partition's change log, and the typed errors the stack
// surfaces.
//
// The token is the SCAN-cursor idiom applied to streams: an opaque
// printable string the client treats as a bookmark and the system can
// decode back into (tenant, per-partition replication positions).
// Because positions are engine sequence numbers that replicas share
// byte-for-byte (see lavastore.ApplyAt), a token minted against one
// primary resumes cleanly against whichever replica is primary later —
// the property that makes subscriptions survive failover. Tokens
// survive splits too: a split only appends partitions, so a shorter
// vector simply extends with zeros (new partitions replay from their
// start).
package changestream

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"abase/internal/lavastore"
)

// ErrBadToken is returned when a resume token cannot be decoded.
// Malformed tokens always error — never panic, never silently resume
// at a wrong offset.
var ErrBadToken = errors.New("changestream: malformed resume token")

// ErrHistoryTruncated reports that a token points below a partition's
// retained history: the WAL segments holding those offsets are gone
// (retention lapsed, or the replica restarted). It is the engine's
// sentinel re-exported so callers can errors.Is-match it without
// importing the storage layer.
var ErrHistoryTruncated = lavastore.ErrHistoryTruncated

// ErrSlowConsumer reports that a subscription's buffer overflowed: the
// consumer fell too far behind the commit rate and the subscription
// failed rather than block writers or buffer without bound. Events are
// durable in the change log — the consumer resumes from its last token
// with nothing lost.
var ErrSlowConsumer = errors.New("changestream: subscriber too slow, buffer overflow")

// Event is one committed write delivered to a subscriber.
type Event struct {
	// Partition is the index of the partition the write committed in.
	Partition int
	// Seq is the write's commit sequence in that partition's change
	// log — the replication position its acknowledgment covered.
	Seq uint64
	// Key is the written key.
	Key []byte
	// Value is the written value (nil for deletes).
	Value []byte
	// Delete reports a tombstone.
	Delete bool
}

// Token is a subscription's decoded resume position: for each
// partition index, the last delivered sequence (0 = nothing delivered,
// deliver from the start of retained history).
type Token struct {
	Tenant    string
	Positions []uint64
}

// tokenPrefix versions the wire form; a future incompatible codec
// bumps it and old tokens fail with ErrBadToken instead of decoding
// wrong.
const tokenPrefix = "cs1."

// maxTokenPartitions bounds the decoded vector so a forged length
// cannot force a huge allocation.
const maxTokenPartitions = 1 << 16

// maxTokenTenant bounds the decoded tenant name.
const maxTokenTenant = 1 << 10

// Encode renders the token as an opaque printable string. The payload
// carries a checksum, so corruption is detected on decode rather than
// resuming at a wrong offset.
func (t Token) Encode() string {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(t.Tenant)))
	buf = append(buf, t.Tenant...)
	buf = binary.AppendUvarint(buf, uint64(len(t.Positions)))
	for _, p := range t.Positions {
		buf = binary.AppendUvarint(buf, p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return tokenPrefix + base64.RawURLEncoding.EncodeToString(buf)
}

// uvarint is binary.Uvarint restricted to MINIMAL encodings, so that
// decoding is exactly the inverse of encoding: a padded varint under a
// recomputed checksum must not alias a canonical token.
func uvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, -1
	}
	if len(binary.AppendUvarint(nil, v)) != n {
		return 0, -1
	}
	return v, n
}

// Decode parses an encoded token. Any deviation — wrong prefix, bad
// base64, short payload, checksum mismatch, trailing bytes, absurd
// lengths — returns ErrBadToken.
func Decode(s string) (Token, error) {
	if len(s) < len(tokenPrefix) || s[:len(tokenPrefix)] != tokenPrefix {
		return Token{}, fmt.Errorf("%w: missing %q prefix", ErrBadToken, tokenPrefix)
	}
	buf, err := base64.RawURLEncoding.DecodeString(s[len(tokenPrefix):])
	if err != nil {
		return Token{}, fmt.Errorf("%w: %v", ErrBadToken, err)
	}
	if len(buf) < 4 {
		return Token{}, fmt.Errorf("%w: short payload", ErrBadToken)
	}
	body, sum := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return Token{}, fmt.Errorf("%w: checksum mismatch", ErrBadToken)
	}
	tlen, n := uvarint(body)
	if n <= 0 || tlen > maxTokenTenant || uint64(len(body)-n) < tlen {
		return Token{}, fmt.Errorf("%w: tenant length", ErrBadToken)
	}
	body = body[n:]
	tenant := string(body[:tlen])
	body = body[tlen:]
	count, n := uvarint(body)
	if n <= 0 || count > maxTokenPartitions {
		return Token{}, fmt.Errorf("%w: partition count", ErrBadToken)
	}
	body = body[n:]
	positions := make([]uint64, count)
	for i := range positions {
		p, n := uvarint(body)
		if n <= 0 {
			return Token{}, fmt.Errorf("%w: position %d", ErrBadToken, i)
		}
		positions[i] = p
		body = body[n:]
	}
	if len(body) != 0 {
		return Token{}, fmt.Errorf("%w: trailing bytes", ErrBadToken)
	}
	return Token{Tenant: tenant, Positions: positions}, nil
}

// Extend grows the position vector to n partitions, new entries at 0
// (replay from the start of retained history). A tenant split only
// appends partitions, so extension is the whole story of token
// compatibility across splits.
func (t Token) Extend(n int) Token {
	if len(t.Positions) >= n {
		return t
	}
	out := Token{Tenant: t.Tenant, Positions: make([]uint64, n)}
	copy(out.Positions, t.Positions)
	return out
}

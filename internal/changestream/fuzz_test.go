package changestream

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzResumeTokenRoundTrip drives the opaque token codec both ways:
// decode arbitrary strings (must error with ErrBadToken or produce a
// token that re-encodes to the same string — never panic), and encode
// arbitrary tokens (must round-trip exactly — a resume at a wrong
// offset would silently lose or duplicate acknowledged events).
func FuzzResumeTokenRoundTrip(f *testing.F) {
	f.Add("", uint64(0), uint64(0))
	f.Add("acme", uint64(1), uint64(99))
	f.Add("tenant-with-a-long-name", uint64(1<<60), uint64(0))
	f.Add(Token{Tenant: "seed", Positions: []uint64{3, 4, 5}}.Encode(), uint64(7), uint64(8))
	f.Add("cs1.AAAA", uint64(0), uint64(0))
	f.Add("cs1.!!!", uint64(0), uint64(0))
	f.Add("p0:deadbeef", uint64(0), uint64(0))
	f.Add(strings.Repeat("cs1.", 64), uint64(2), uint64(2))

	f.Fuzz(func(t *testing.T, s string, p0, p1 uint64) {
		// Direction 1: arbitrary input to Decode. Only outcomes allowed:
		// a typed error, or a valid token whose re-encoding is canonical.
		tok, err := Decode(s)
		if err != nil {
			if !errors.Is(err, ErrBadToken) {
				t.Fatalf("Decode(%q) returned untyped error %v", s, err)
			}
		} else {
			re := tok.Encode()
			if re != s {
				t.Fatalf("decoded token re-encodes to %q, input was %q", re, s)
			}
		}

		// Direction 2: a token built from the fuzzed parts must survive
		// the round trip bit-exact.
		if !utf8.ValidString(s) || len(s) > maxTokenTenant {
			return // tenant names are bounded UTF-8 strings
		}
		in := Token{Tenant: s, Positions: []uint64{p0, p1, 0}}
		out, err := Decode(in.Encode())
		if err != nil {
			t.Fatalf("round trip of %+v failed: %v", in, err)
		}
		if out.Tenant != in.Tenant || len(out.Positions) != 3 ||
			out.Positions[0] != p0 || out.Positions[1] != p1 || out.Positions[2] != 0 {
			t.Fatalf("round trip %+v -> %+v", in, out)
		}
	})
}

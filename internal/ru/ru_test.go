package ru

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWriteRU(t *testing.T) {
	// 2KB value, 3 replicas → 3 RU.
	if got := WriteRU(2048, 3); got != 3 {
		t.Fatalf("WriteRU(2048,3) = %v", got)
	}
	// 4KB, 1 replica → 2 RU.
	if got := WriteRU(4096, 1); got != 2 {
		t.Fatalf("WriteRU(4096,1) = %v", got)
	}
	// Replica count below 1 is clamped.
	if got := WriteRU(2048, 0); got != 1 {
		t.Fatalf("WriteRU(2048,0) = %v", got)
	}
}

func TestWriteRUMinimumCharge(t *testing.T) {
	if got := WriteRU(0, 1); got <= 0 {
		t.Fatalf("zero-byte write charged %v", got)
	}
}

func TestReadRU(t *testing.T) {
	if got := ReadRU(2048, 0); got != 1 {
		t.Fatalf("miss read = %v", got)
	}
	if got := ReadRU(2048, 1); got != 0 {
		t.Fatalf("hit read = %v", got)
	}
	if got := ReadRU(2048, 0.5); got != 0.5 {
		t.Fatalf("half-hit read = %v", got)
	}
}

func TestReadRUClampsHitRatio(t *testing.T) {
	if got := ReadRU(2048, -1); got != 1 {
		t.Fatalf("clamped low = %v", got)
	}
	if got := ReadRU(2048, 2); got != 0 {
		t.Fatalf("clamped high = %v", got)
	}
}

func TestEstimatorDefaults(t *testing.T) {
	e := NewEstimator(0)
	if e.ExpectedReadSize() != UnitBytes {
		t.Fatalf("default size = %v", e.ExpectedReadSize())
	}
	if e.ExpectedHitRatio() != 0 {
		t.Fatalf("default hit = %v", e.ExpectedHitRatio())
	}
	// Default estimate: one unit-size read with no cache discount.
	if got := e.EstimateReadRU(); got != 1 {
		t.Fatalf("default estimate = %v", got)
	}
}

func TestEstimatorTracksObservations(t *testing.T) {
	e := NewEstimator(4)
	for i := 0; i < 4; i++ {
		e.ObserveRead(4096, i%2 == 0) // alternate hit/miss, all 4KB
	}
	if got := e.ExpectedReadSize(); got != 4096 {
		t.Fatalf("E[S] = %v", got)
	}
	if got := e.ExpectedHitRatio(); got != 0.5 {
		t.Fatalf("E[hit] = %v", got)
	}
	// 4096/2048 * (1-0.5) = 1.0
	if got := e.EstimateReadRU(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("estimate = %v", got)
	}
}

func TestEstimatorWindowSlides(t *testing.T) {
	e := NewEstimator(2)
	e.ObserveRead(100, false)
	e.ObserveRead(100, false)
	e.ObserveRead(5000, true)
	e.ObserveRead(5000, true)
	if got := e.ExpectedReadSize(); got != 5000 {
		t.Fatalf("window did not slide: %v", got)
	}
	if got := e.ExpectedHitRatio(); got != 1 {
		t.Fatalf("hit ratio = %v", got)
	}
}

func TestComplexOpEstimates(t *testing.T) {
	e := NewEstimator(8)
	// Hashes of 100 fields × 1KB values, always missing cache.
	for i := 0; i < 8; i++ {
		e.ObserveCollectionLen(100)
		e.ObserveRead(1024, false)
	}
	hlen := e.EstimateHLenRU()
	if hlen <= 0 || hlen > 1 {
		t.Fatalf("HLen RU = %v", hlen)
	}
	// HGetAll ≈ HLen + 100 × 1024/2048 = HLen + 50.
	want := hlen + 50
	if got := e.EstimateHGetAllRU(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("HGetAll RU = %v, want %v", got, want)
	}
}

func TestPropertyReadRUNonNegativeAndMonotone(t *testing.T) {
	f := func(size uint16, hitQ uint8) bool {
		hit := float64(hitQ) / 255
		v := ReadRU(int(size), hit)
		if v < 0 {
			return false
		}
		// More cache hits never increases RU.
		return ReadRU(int(size), 1) <= v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWriteRUScalesWithReplicas(t *testing.T) {
	f := func(size uint16, r uint8) bool {
		rep := int(r%5) + 1
		base := WriteRU(int(size), 1)
		return math.Abs(WriteRU(int(size), rep)-float64(rep)*base) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

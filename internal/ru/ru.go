package ru

import (
	"abase/internal/metrics"
)

// UnitBytes is U, the byte size of one request unit, empirically set to
// 2 KB in the paper.
const UnitBytes = 2048

// DefaultWindow is k, the moving-average window for read-size and
// cache-hit estimation.
const DefaultWindow = 1024

// WriteRU returns the RU charge for writing size bytes with the given
// replica count: one direct write plus r−1 synchronization operations.
// The minimum charge is one replica's worth.
func WriteRU(size int, replicas int) float64 {
	if replicas < 1 {
		replicas = 1
	}
	per := float64(size) / UnitBytes
	if per < 1.0/UnitBytes {
		per = 1.0 / UnitBytes // at least one byte's worth
	}
	return float64(replicas) * per
}

// ReadRU returns the RU charge for a read that returned size bytes,
// discounted by the hit probability already absorbed by caches (hitRatio
// in [0,1]). The paper charges on actual size with the expected miss
// factor applied to traffic-control estimates; for billing on actuals,
// pass hitRatio 0 for a miss and 1 for a hit.
func ReadRU(size int, hitRatio float64) float64 {
	if hitRatio < 0 {
		hitRatio = 0
	}
	if hitRatio > 1 {
		hitRatio = 1
	}
	return float64(size) * (1 - hitRatio) / UnitBytes
}

// scanExaminedPerRU is how many merged records a scan may examine per
// RU: visiting a record (including tombstones and expired records that
// return nothing) is far cheaper than transferring it, but not free.
const scanExaminedPerRU = 256

// minScanRU is the floor charge for a scan page, mirroring the
// metadata-lookup floor used for length queries: even an empty page
// consumed a seek and a merge setup.
const minScanRU = 1.0 / 8

// ScanRU returns the RU charge for one range-scan page that returned
// size bytes of keys+values and examined n merged records. Scans
// bypass the caches, so no hit discount applies; the examined term
// bills the iteration work a tombstone- or TTL-heavy range costs even
// when it returns little.
func ScanRU(size int, examined int) float64 {
	charge := float64(size)/UnitBytes + float64(examined)/scanExaminedPerRU
	if charge < minScanRU {
		charge = minScanRU
	}
	return charge
}

// Estimator predicts read costs for traffic control before the value
// size and cache outcome are known, using moving averages over the last
// k requests (§4.1). Safe for concurrent use.
type Estimator struct {
	readSize *metrics.MovingAverage
	hitRatio *metrics.MovingAverage
	// per-collection length estimation for complex operations, e.g.
	// hash field counts for HLen/HGetAll.
	lenEst *metrics.MovingAverage
}

// NewEstimator returns an estimator with window k (DefaultWindow if
// k <= 0).
func NewEstimator(k int) *Estimator {
	if k <= 0 {
		k = DefaultWindow
	}
	return &Estimator{
		readSize: metrics.NewMovingAverage(k),
		hitRatio: metrics.NewMovingAverage(k),
		lenEst:   metrics.NewMovingAverage(k),
	}
}

// ObserveRead records a completed read's returned size and whether it
// hit a cache.
func (e *Estimator) ObserveRead(size int, hit bool) {
	e.readSize.Observe(float64(size))
	if hit {
		e.hitRatio.Observe(1)
	} else {
		e.hitRatio.Observe(0)
	}
}

// ObserveCollectionLen records an observed collection length (e.g. the
// number of fields in a hash) for complex-operation estimation.
func (e *Estimator) ObserveCollectionLen(n int) {
	e.lenEst.Observe(float64(n))
}

// ExpectedReadSize returns E[S_read] with a 1-unit default before any
// observations.
func (e *Estimator) ExpectedReadSize() float64 {
	return e.readSize.Value(UnitBytes)
}

// ExpectedHitRatio returns E[R_hit], defaulting to 0 (pessimistic)
// before any observations.
func (e *Estimator) ExpectedHitRatio() float64 {
	return e.hitRatio.Value(0)
}

// ExpectedCollectionLen returns the expected collection length,
// defaulting to 1.
func (e *Estimator) ExpectedCollectionLen() float64 {
	return e.lenEst.Value(1)
}

// EstimateReadRU returns the pre-execution RU estimate for a simple
// read: E[S_read]·(1−E[R_hit])/U.
func (e *Estimator) EstimateReadRU() float64 {
	return e.ExpectedReadSize() * (1 - e.ExpectedHitRatio()) / UnitBytes
}

// EstimateHLenRU returns the RU estimate for a length query (HLen):
// a fixed small CPU cost independent of collection size, one unit's
// worth of work.
func (e *Estimator) EstimateHLenRU() float64 {
	return 1.0 / 8 // metadata-only lookup: fraction of a unit
}

// EstimateScanRU returns the pre-execution RU estimate for a range
// scan bounded at limit entries: limit·E[S_read]/U with the scan
// floor. Scans bypass the caches, so unlike EstimateReadRU no hit
// discount applies.
func (e *Estimator) EstimateScanRU(limit int) float64 {
	if limit <= 0 {
		limit = 1
	}
	est := float64(limit) * e.ExpectedReadSize() / UnitBytes
	if est < minScanRU {
		est = minScanRU
	}
	return est
}

// EstimateHGetAllRU returns the RU estimate for HGetAll decomposed per
// the paper: an HLen stage followed by a scan of the expected number of
// fields at the expected per-item size.
func (e *Estimator) EstimateHGetAllRU() float64 {
	scan := e.ExpectedCollectionLen() * e.ExpectedReadSize() * (1 - e.ExpectedHitRatio()) / UnitBytes
	return e.EstimateHLenRU() + scan
}

// Package ru implements ABase's normalized Request Unit accounting
// (§4.1). RUs quantify a request's consumption of CPU, memory, and
// disk I/O; they are both the billing unit and the basis of the
// isolation mechanism.
//
//	Write:        RU = r · S_write/U            (r = replica count)
//	Read:         RU = E[S_read]·(1−E[R_hit])/U, estimated from moving
//	              averages over the last k requests; charged on the
//	              actual returned size.
//	Complex read: decomposed into a length stage plus a scan stage,
//	              charged per stage (HGetAll = HLen + scan).
package ru

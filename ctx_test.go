package abase

import (
	"context"
	"errors"
	"testing"
	"time"
)

// bg is the background context shared by tests that do not exercise
// cancellation; cancellation behavior itself is covered in this file.
var bg = context.Background()

// TestClientPreCanceledNeverChargesRU: the acceptance-criterion test —
// a context that is already done never reaches the storage engine and
// charges no RU anywhere in the three planes.
func TestClientPreCanceledNeverChargesRU(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "pc", QuotaRU: 100000})
	tn, _ := c.Tenant("pc")
	cl := tn.Client()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cl.Set(ctx, []byte("k"), []byte("v")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Set err = %v, want ErrCanceled", err)
	}
	if _, err := cl.Get(ctx, []byte("k")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Get err = %v, want ErrCanceled", err)
	}
	if _, err := cl.MGet(ctx, []byte("a"), []byte("b")); !errors.Is(err, ErrCanceled) {
		t.Fatalf("MGet err = %v, want ErrCanceled", err)
	}
	if _, _, err := cl.Scan(ctx, "", "*", 10); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Scan err = %v, want ErrCanceled", err)
	}

	// Nothing reached the engine or was charged.
	if _, err := cl.Get(bg, []byte("k")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("canceled Set reached the engine: %v", err)
	}
	for _, n := range c.Nodes() {
		if st := n.TenantStats("pc"); st.RUUsed > rUOfOneMiss() {
			t.Fatalf("node %s charged RU for canceled requests: %+v", n.ID(), st)
		}
	}
}

// rUOfOneMiss bounds the RU the verification read itself may have
// charged (a zero-byte miss).
func rUOfOneMiss() float64 { return 1 }

// TestClientConditionalWrites covers Set/SetWith option combinations
// end to end through the fleet.
func TestClientConditionalWrites(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "cw", QuotaRU: 100000})
	tn, _ := c.Tenant("cw")
	cl := tn.Client()
	k := []byte("cond")

	// NX writes the first time, refuses the second.
	if err := cl.Set(bg, k, []byte("v1"), IfNotExists()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(bg, k, []byte("v2"), IfNotExists()); !errors.Is(err, ErrConditionNotMet) {
		t.Fatalf("NX on existing: %v, want ErrConditionNotMet", err)
	}
	if v, _ := cl.Get(bg, k); string(v) != "v1" {
		t.Fatalf("NX overwrote: %q", v)
	}
	// SetWith reports the refusal without an error, with the old value.
	res, err := cl.SetWith(bg, k, []byte("v2"), IfNotExists(), ReturnOld())
	if err != nil || res.Written || !res.OldExists || string(res.Old) != "v1" {
		t.Fatalf("SetWith NX: res=%+v err=%v", res, err)
	}
	// XX writes over an existing key, refuses an absent one.
	if err := cl.Set(bg, k, []byte("v3"), IfExists()); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(bg, []byte("ghost"), []byte("v"), IfExists()); !errors.Is(err, ErrConditionNotMet) {
		t.Fatalf("XX on absent: %v", err)
	}
	// KEEPTTL preserves the expiry, a plain Set clears it.
	if err := cl.Set(bg, k, []byte("v4"), WithTTL(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(bg, k, []byte("v5"), KeepTTL()); err != nil {
		t.Fatal(err)
	}
	if ttl, has, _ := cl.TTL(bg, k); !has || ttl <= 50*time.Minute {
		t.Fatalf("KEEPTTL lost the expiry: ttl=%v has=%v", ttl, has)
	}
	if v, err := cl.Get(bg, k); err != nil || string(v) != "v5" {
		t.Fatalf("KEEPTTL value: %q err=%v", v, err)
	}
	if err := cl.Set(bg, k, []byte("v6")); err != nil {
		t.Fatal(err)
	}
	if _, has, _ := cl.TTL(bg, k); has {
		t.Fatal("plain Set kept the expiry")
	}
}

// TestKeysBackoffBoundedByDeadline: a traversal whose sub-scans are
// persistently throttled backs off between pages and gives up with the
// deadline sentinel instead of spinning until the throttle lifts.
func TestKeysBackoffBoundedByDeadline(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	// A quota so small every scan admission is rejected at the proxy.
	c.CreateTenant(TenantSpec{Name: "kb", QuotaRU: 0.000001, DisableProxyCache: true})
	tn, _ := c.Tenant("kb")
	cl := tn.Client()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cl.Keys(ctx, "*")
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Keys err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("Keys ran %v past its 150ms deadline", elapsed)
	}
	// The backoff must actually pace the retries: with ~1ms, 2ms, 4ms...
	// waits, a 150ms window fits well under 5000 attempts; a busy-spin
	// would do millions. Proxy rejected counter bounds the attempts.
	rejected := tn.Fleet().AggregateStats().Rejected
	if rejected > 5000 {
		t.Fatalf("Keys busy-spun: %d throttled attempts in 150ms", rejected)
	}
}

// TestSetQuotaRacesSplit is the -race regression for Tenant.SetQuota:
// it must read a locked routing snapshot, not the live table a
// concurrent heat split mutates.
func TestSetQuotaRacesSplit(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "qr", QuotaRU: 100000, Partitions: 2})
	tn, _ := c.Tenant("qr")

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tn.SetQuota(float64(100000 + i))
		}
	}()
	for i := 0; i < 4; i++ {
		if err := c.Meta.SplitTenantPartitions("qr"); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if got := tn.meta.Quota.RU(); got != 100049 {
		t.Fatalf("final quota = %v", got)
	}
}

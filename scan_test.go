package abase

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"abase/internal/clock"
	"abase/internal/resp"
)

func scanTenant(t *testing.T, cfg ClusterConfig, spec TenantSpec) (*Cluster, *Client) {
	t.Helper()
	c := newCluster(t, cfg)
	tenant, err := c.CreateTenant(spec)
	if err != nil {
		t.Fatal(err)
	}
	return c, tenant.Client()
}

func TestClientScanKeysDBSize(t *testing.T) {
	_, cl := scanTenant(t, ClusterConfig{Nodes: 3},
		TenantSpec{Name: "app", QuotaRU: 1e8, Partitions: 4, Proxies: 2})
	const users, sessions = 30, 20
	for i := 0; i < users; i++ {
		if err := cl.Set(bg, []byte(fmt.Sprintf("user:%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sessions; i++ {
		if err := cl.Set(bg, []byte(fmt.Sprintf("sess:%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Cursor pages cover everything exactly once (no topology change).
	seen := map[string]int{}
	cursor := ""
	for {
		keys, next, err := cl.Scan(bg, cursor, "", 16)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			seen[string(k)]++
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if len(seen) != users+sessions {
		t.Fatalf("scan saw %d distinct keys, want %d", len(seen), users+sessions)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %q seen %d times", k, c)
		}
	}

	keys, err := cl.Keys(bg, "user:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != users {
		t.Fatalf("Keys(user:*) = %d, want %d", len(keys), users)
	}
	n, err := cl.DBSize(bg)
	if err != nil {
		t.Fatal(err)
	}
	if n != users+sessions {
		t.Fatalf("DBSize = %d, want %d", n, users+sessions)
	}
}

// TestClientScanSurvivesPartitionSplit is the acceptance test for the
// distributed cursor: a traversal that starts before a partition split
// and finishes after it still returns every stable key at least once.
// A doubling split only rehashes keys to strictly higher partition
// indexes, so completed partitions stay completed and the in-progress
// one restarts from its resume key.
func TestClientScanSurvivesPartitionSplit(t *testing.T) {
	c, cl := scanTenant(t, ClusterConfig{Nodes: 3},
		TenantSpec{Name: "app", QuotaRU: 1e8, Partitions: 2, Proxies: 1})
	const n = 120
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if err := cl.Set(bg, []byte(k), []byte("v")); err != nil {
			t.Fatal(err)
		}
		want[k] = true
	}

	seen := map[string]bool{}
	cursor := ""
	pages := 0
	split := false
	for {
		keys, next, err := cl.Scan(bg, cursor, "", 10)
		if err != nil {
			t.Fatal(err)
		}
		pages++
		for _, k := range keys {
			seen[string(k)] = true
		}
		if pages == 3 && !split {
			// Split mid-traversal: 2 partitions become 4 and roughly
			// half the keys rehash into the new ones.
			if err := c.Meta.SplitTenantPartitions("app"); err != nil {
				t.Fatal(err)
			}
			split = true
		}
		if next == "" {
			break
		}
		cursor = next
	}
	if !split {
		t.Fatal("scan finished before the split fired; lower the page size")
	}
	if got, err := c.Meta.NumPartitions("app"); err != nil || got != 4 {
		t.Fatalf("NumPartitions = %d, %v; want 4", got, err)
	}
	for k := range want {
		if !seen[k] {
			t.Fatalf("key %q lost across the partition split", k)
		}
	}
	// And the keyspace is still fully consistent afterwards.
	size, err := cl.DBSize(bg)
	if err != nil {
		t.Fatal(err)
	}
	if size != n {
		t.Fatalf("DBSize after split = %d, want %d", size, n)
	}
}

// TestClientScanAgreesWithGetOnTTL: SCAN/KEYS/DBSIZE and GET make the
// same call on expired records, through the whole stack. TTL expiry
// has seconds resolution, so the test drives a simulated clock.
func TestClientScanAgreesWithGetOnTTL(t *testing.T) {
	sim := clock.NewSim(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	// The proxy cache stays ON: TTL-bearing values must never be served
	// from the AU-LRU, so expiry is observable through the full stack.
	_, cl := scanTenant(t, ClusterConfig{Nodes: 3, Clock: sim, AdmitCost: time.Nanosecond},
		TenantSpec{Name: "app", QuotaRU: 1e8, Partitions: 2, Proxies: 1})
	if err := cl.Set(bg, []byte("ttl"), []byte("v"), WithTTL(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set(bg, []byte("live"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Read through every path that might cache the value.
	if _, err := cl.Get(bg, []byte("ttl")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MGet(bg, []byte("ttl"), []byte("live")); err != nil {
		t.Fatal(err)
	}
	sim.Advance(time.Hour)

	if _, err := cl.Get(bg, []byte("ttl")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ttl) after expiry = %v, want ErrNotFound", err)
	}
	size, err := cl.DBSize(bg)
	if err != nil {
		t.Fatal(err)
	}
	if size != 1 {
		t.Fatalf("DBSize = %d, want 1 (expired key must not count)", size)
	}
	keys, err := cl.Keys(bg, "*")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || string(keys[0]) != "live" {
		t.Fatalf("Keys = %v, want only 'live'", keys)
	}
}

// TestSplitPreservesTTL: the split rehash rewrites moved records with
// their remaining TTL instead of silently making them immortal, so
// expiry stays consistent with un-moved keys after a split.
func TestSplitPreservesTTL(t *testing.T) {
	sim := clock.NewSim(time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC))
	c, cl := scanTenant(t, ClusterConfig{Nodes: 3, Clock: sim, AdmitCost: time.Nanosecond},
		TenantSpec{Name: "app", QuotaRU: 1e8, Partitions: 2, Proxies: 1})
	const n = 20
	for i := 0; i < n; i++ {
		if err := cl.Set(bg, []byte(fmt.Sprintf("ttl:%03d", i)), []byte("v"), WithTTL(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := cl.Set(bg, []byte(fmt.Sprintf("perm:%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Doubling 2 -> 4 partitions rehashes roughly half the keys.
	if err := c.Meta.SplitTenantPartitions("app"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("ttl:%03d", i))
		ttl, hasTTL, err := cl.TTL(bg, k)
		if err != nil || !hasTTL || ttl <= 0 {
			t.Fatalf("TTL(%s) after split = %v, %v, %v; want a live expiry", k, ttl, hasTTL, err)
		}
	}
	sim.Advance(2 * time.Hour)
	size, err := cl.DBSize(bg)
	if err != nil {
		t.Fatal(err)
	}
	if size != n {
		t.Fatalf("DBSize after expiry = %d, want %d (ttl: keys must lapse, perm: keys must stay)", size, n)
	}
	if _, err := cl.Get(bg, []byte("ttl:000")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ttl:000) after expiry = %v, want ErrNotFound", err)
	}
}

func TestServeScanKeysDBSize(t *testing.T) {
	c, cl := scanTenant(t, ClusterConfig{Nodes: 3},
		TenantSpec{Name: "app", QuotaRU: 1e8, Partitions: 2, Proxies: 1})
	_ = cl
	addr, srv, err := c.Serve("127.0.0.1:0", "app")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	for i := 0; i < 12; i++ {
		if v, _ := rc.DoStrings("SET", fmt.Sprintf("user:%02d", i), "v"); v.Text() != "OK" {
			t.Fatalf("SET = %+v", v)
		}
	}
	for i := 0; i < 5; i++ {
		if v, _ := rc.DoStrings("SET", fmt.Sprintf("tmp:%02d", i), "v"); v.Text() != "OK" {
			t.Fatalf("SET = %+v", v)
		}
	}

	// SCAN loop with the Redis cursor convention: start at 0, stop at 0,
	// every cursor a decimal integer (typed clients parse it numerically).
	seen := map[string]bool{}
	cursor := "0"
	for {
		v, err := rc.DoStrings("SCAN", cursor, "MATCH", "user:*", "COUNT", "4")
		if err != nil {
			t.Fatal(err)
		}
		if v.IsError() || len(v.Array) != 2 {
			t.Fatalf("SCAN reply = %+v", v)
		}
		for _, k := range v.Array[1].Array {
			seen[k.Text()] = true
		}
		cursor = v.Array[0].Text()
		for _, ch := range cursor {
			if ch < '0' || ch > '9' {
				t.Fatalf("cursor %q is not a decimal integer", cursor)
			}
		}
		if cursor == "0" {
			break
		}
	}
	if len(seen) != 12 {
		t.Fatalf("SCAN MATCH saw %d keys, want 12: %v", len(seen), seen)
	}
	for k := range seen {
		if k[:5] != "user:" {
			t.Fatalf("MATCH leaked %q", k)
		}
	}

	if v, _ := rc.DoStrings("KEYS", "tmp:*"); v.IsError() || len(v.Array) != 5 {
		t.Fatalf("KEYS tmp:* = %+v", v)
	}
	if v, _ := rc.DoStrings("DBSIZE"); v.Int != 17 {
		t.Fatalf("DBSIZE = %+v, want 17", v)
	}

	// An absurd COUNT is clamped, not overflowed: the page returns the
	// whole (small) keyspace and terminates.
	if v, _ := rc.DoStrings("SCAN", "0", "COUNT", "300000000000000000"); v.IsError() ||
		len(v.Array) != 2 || v.Array[0].Text() != "0" || len(v.Array[1].Array) != 17 {
		t.Fatalf("SCAN with huge COUNT = %+v, want full single-page traversal", v)
	}

	// Error shapes.
	if v, _ := rc.DoStrings("SCAN", "not-a-cursor"); !v.IsError() {
		t.Fatalf("SCAN bad cursor = %+v, want error", v)
	}
	if v, _ := rc.DoStrings("SCAN", "0", "COUNT", "nope"); !v.IsError() {
		t.Fatalf("SCAN bad count = %+v, want error", v)
	}
	if v, _ := rc.DoStrings("SCAN", "0", "BOGUS"); !v.IsError() {
		t.Fatalf("SCAN bad option = %+v, want error", v)
	}
	if v, _ := rc.DoStrings("DBSIZE", "x"); !v.IsError() {
		t.Fatalf("DBSIZE with arg = %+v, want error", v)
	}
}

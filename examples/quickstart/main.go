// Quickstart: start an embedded ABase cluster, provision a tenant, and
// issue basic key-value and hash operations through the client API.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"abase"
)

func main() {
	// A 3-node cluster with 3-way replication, entirely in-process.
	cluster, err := abase.NewCluster(abase.ClusterConfig{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A tenant with a 10k RU/s quota, 4 partitions, 2 proxies.
	tenant, err := cluster.CreateTenant(abase.TenantSpec{
		Name:       "myapp",
		QuotaRU:    10_000,
		Partitions: 4,
		Proxies:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := tenant.Client()
	ctx := context.Background()

	// Strings.
	if err := c.Set(ctx, []byte("greeting"), []byte("hello, abase")); err != nil {
		log.Fatal(err)
	}
	v, err := c.Get(ctx, []byte("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greeting = %s\n", v)

	// Hashes.
	c.HSet(ctx, []byte("user:1"), "name", []byte("ada"))
	c.HSet(ctx, []byte("user:1"), "lang", []byte("go"))
	n, _ := c.HLen(ctx, []byte("user:1"))
	all, _ := c.HGetAll(ctx, []byte("user:1"))
	fmt.Printf("user:1 has %d fields: ", n)
	for f, v := range all {
		fmt.Printf("%s=%s ", f, v)
	}
	fmt.Println()

	// Batch operations.
	c.MSet(ctx, map[string][]byte{"a": []byte("1"), "b": []byte("2")})
	vs, _ := c.MGet(ctx, []byte("a"), []byte("missing"), []byte("b"))
	fmt.Printf("mget: a=%s missing=%v b=%s\n", vs[0], vs[1], vs[2])

	// Delete.
	c.Delete(ctx, []byte("greeting"))
	if _, err := c.Get(ctx, []byte("greeting")); errors.Is(err, abase.ErrNotFound) {
		fmt.Println("greeting deleted")
	}
}

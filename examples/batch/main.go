// Batch: multi-key operations through the batched proxy/data-plane
// path — one quota admission and one DataNode round trip per node
// instead of one per key, with per-key error slots so a throttled or
// missing key never aborts the rest of the batch.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"abase"
)

func main() {
	cluster, err := abase.NewCluster(abase.ClusterConfig{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	tenant, err := cluster.CreateTenant(abase.TenantSpec{
		Name:       "batchapp",
		QuotaRU:    10_000,
		Partitions: 4,
		Proxies:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := tenant.Client()
	ctx := context.Background()

	// Write a page of user records as one batch. Pairs apply in order,
	// grouped by owning proxy and partition under a single quota
	// admission per sub-batch.
	kvs := make([]abase.KV, 0, 8)
	for i := 0; i < 8; i++ {
		kvs = append(kvs, abase.KV{
			Key:   []byte(fmt.Sprintf("user:%d", i)),
			Value: []byte(fmt.Sprintf(`{"id":%d}`, i)),
		})
	}
	if err := c.MSetPairs(ctx, kvs); err != nil {
		log.Fatal(err)
	}

	// Read them back together with a key that does not exist. Missing
	// keys come back as nil slots, not errors.
	values, err := c.MGet(ctx,
		[]byte("user:0"), []byte("user:404"), []byte("user:7"),
	)
	if err != nil {
		// Per-key failures (e.g. a throttled sub-batch) arrive as a
		// *BatchError; the successful slots in values are still valid.
		var be *abase.BatchError
		if errors.As(err, &be) {
			log.Printf("partial failure: %v", be)
		} else {
			log.Fatal(err)
		}
	}
	for i, v := range values {
		fmt.Printf("slot %d: %q\n", i, v)
	}

	// Existence checks skip value transfer entirely.
	exists, err := c.MExists(ctx, []byte("user:0"), []byte("user:404"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exists: %v\n", exists)

	// Batched deletes report how many keys were removed.
	deleted, err := c.MDelete(ctx, kvs[0].Key, kvs[1].Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted: %d\n", deleted)
}

// Hotkey-cache: demonstrates the proxy-layer AU-LRU cache and the
// limited fan-out hash routing strategy (§4.4) absorbing a hot-key
// event — the scenario behind Table 2.
//
// An e-commerce tenant serves skewed (Zipf) read traffic. We compare
// random routing (each key may land on any proxy, so every small proxy
// cache thrashes over the full keyspace) against limited fan-out hash
// routing (each key maps to one proxy group), and report per-proxy hit
// ratios and how much RU the DataNodes were spared.
package main

import (
	"context"
	"fmt"
	"log"

	"abase"
	"abase/internal/workload"
)

func run(groups int) (hitRatio, nodeRU float64) {
	cluster, err := abase.NewCluster(abase.ClusterConfig{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	tenant, err := cluster.CreateTenant(abase.TenantSpec{
		Name:            "shop",
		QuotaRU:         1e9,
		Partitions:      4,
		Proxies:         8,
		ProxyGroups:     groups,
		ProxyCacheBytes: 64 << 10, // scarce per-proxy memory, like production
	})
	if err != nil {
		log.Fatal(err)
	}
	c := tenant.Client()
	ctx := context.Background()

	// Product metadata: 20k items of 1KB, keyed in the generator's
	// "key-%012d" space.
	const items = 20_000
	val := make([]byte, 1024)
	for i := 0; i < items; i++ {
		if err := c.Set(ctx, key(i), val); err != nil {
			log.Fatal(err)
		}
	}

	// A promotion begins: heavily skewed reads.
	gen := workload.NewZipfKeys(items, 1.4, 42)
	for op := 0; op < 40_000; op++ {
		if _, err := c.Get(ctx, gen.Next()); err != nil {
			log.Fatal(err)
		}
	}

	stats := tenant.Fleet().AggregateStats()
	var ru float64
	for _, n := range cluster.Nodes() {
		ru += n.TenantStats("shop").RUUsed
	}
	return stats.HitRatio(), ru
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%012d", i)) }

func main() {
	randomHit, randomRU := run(1) // random routing: one big group
	fanoutHit, fanoutRU := run(4) // limited fan-out: 8 proxies in 4 groups

	fmt.Println("hot-key promotion, 8 proxies, 64KB cache each:")
	fmt.Printf("  random routing:    proxy hit ratio %5.1f%%, DataNode RU %8.0f\n",
		randomHit*100, randomRU)
	fmt.Printf("  limited fan-out:   proxy hit ratio %5.1f%%, DataNode RU %8.0f\n",
		fanoutHit*100, fanoutRU)
	if randomRU > 0 {
		fmt.Printf("  RU saved by fan-out routing: %.0f%%\n", (1-fanoutRU/randomRU)*100)
	}
}

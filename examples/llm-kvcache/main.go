// LLM-kvcache: ABase as a remote KV-cache store for large language
// model serving — the highest-throughput workload in Table 1
// (normalized throughput 10000, storage 5760, TTL 1 day, cache
// bypassed by design).
//
// Each inference request stores the KV-cache blocks of its prompt's
// token-sequence prefixes; later requests sharing a prefix fetch the
// blocks instead of recomputing attention. Entries carry a 24h TTL so
// the store cleans itself.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"abase"
)

func main() {
	cluster, err := abase.NewCluster(abase.ClusterConfig{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	tenant, err := cluster.CreateTenant(abase.TenantSpec{
		Name:       "llm-serving",
		QuotaRU:    1e9,
		Partitions: 8,
		Proxies:    2,
		// The LLM workload bypasses the proxy cache (Table 1: cache
		// ratio 0) — blocks are huge and read flows go straight to the
		// data plane for bandwidth.
		DisableProxyCache: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := tenant.Client()
	ctx := context.Background()

	const (
		prompts    = 60
		blockToken = 16 // tokens per kv block
		blockSize  = 8 << 10
		ttl        = 24 * time.Hour
	)
	rng := rand.New(rand.NewSource(7))
	block := make([]byte, blockSize)

	// Simulate inference traffic: prompts share system-prompt prefixes.
	var stored, reused int
	for p := 0; p < prompts; p++ {
		prefixFamily := rng.Intn(4) // four common system prompts
		promptLen := 64 + rng.Intn(192)
		for tok := 0; tok < promptLen; tok += blockToken {
			k := []byte(fmt.Sprintf("kv:%d:%06d", prefixFamily, tok))
			if _, err := c.Get(ctx, k); err == nil {
				reused++
				continue
			} else if !errors.Is(err, abase.ErrNotFound) {
				log.Fatal(err)
			}
			if err := c.Set(ctx, k, block, abase.WithTTL(ttl)); err != nil {
				log.Fatal(err)
			}
			stored++
		}
	}
	fmt.Printf("served %d prompts: %d kv blocks computed+stored, %d reused from ABase\n",
		prompts, stored, reused)
	fmt.Printf("prefix reuse rate: %.0f%% of blocks avoided recomputation\n",
		100*float64(reused)/float64(stored+reused))

	var disk int64
	for _, n := range cluster.Nodes() {
		disk += n.Snapshot().DiskUsed
	}
	fmt.Printf("cluster stores %.1f MiB of kv-cache (3-way replicated), expiring in %s\n",
		float64(disk)/(1<<20), ttl)
}

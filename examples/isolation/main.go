// Isolation: two tenants share a cluster; one bursts far beyond its
// quota while the other must keep its service level — the
// hierarchical request restriction of §4.2 in action.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"abase"
)

func main() {
	cluster, err := abase.NewCluster(abase.ClusterConfig{Nodes: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A small tenant with a modest quota and a well-behaved neighbor.
	noisy, err := cluster.CreateTenant(abase.TenantSpec{
		Name:    "noisy",
		QuotaRU: 50, // RU/s — tiny on purpose
		Proxies: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := cluster.CreateTenant(abase.TenantSpec{
		Name:    "quiet",
		QuotaRU: 100_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	nc, qc := noisy.Client(), quiet.Client()
	ctx := context.Background()
	val := make([]byte, 2048) // 1 RU per write per replica

	// The noisy tenant floods writes beyond its quota.
	var ok, throttled int
	for i := 0; i < 2000; i++ {
		err := nc.Set(ctx, []byte(fmt.Sprintf("n%06d", i)), val)
		switch {
		case err == nil:
			ok++
		case errors.Is(err, abase.ErrThrottled):
			throttled++
		default:
			log.Fatal(err)
		}
	}
	fmt.Printf("noisy tenant: %d writes admitted, %d throttled at its own quota\n", ok, throttled)

	// The quiet tenant is unaffected: every request succeeds.
	var quietOK int
	for i := 0; i < 500; i++ {
		if err := qc.Set(ctx, []byte(fmt.Sprintf("q%06d", i)), val); err != nil {
			log.Fatalf("quiet tenant impacted by neighbor: %v", err)
		}
		quietOK++
	}
	fmt.Printf("quiet tenant: %d/%d writes succeeded despite the neighbor's flood\n", quietOK, 500)
	fmt.Println("isolation holds: the burst is rejected at the noisy tenant's own quota,")
	fmt.Println("before it can consume the shared DataNodes' resources")
}

package abase

import (
	"strings"
	"testing"
	"time"

	"abase/internal/resp"
)

// readPush reads the next pushed value with a bounded wait.
func readPush(t *testing.T, cl *resp.Client) resp.Value {
	t.Helper()
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	v, err := cl.Read()
	if err != nil {
		t.Fatalf("read push: %v", err)
	}
	cl.SetReadDeadline(time.Time{})
	return v
}

// wantMessage asserts a ["message", channel, payload] push.
func wantMessage(t *testing.T, v resp.Value, channel, payload string) {
	t.Helper()
	if v.Kind != resp.Array || len(v.Array) != 3 ||
		string(v.Array[0].Str) != "message" ||
		string(v.Array[1].Str) != channel ||
		string(v.Array[2].Str) != payload {
		t.Fatalf("push = %+v, want message %s %s", v, channel, payload)
	}
}

func TestServePubSubKeyspaceNotifications(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	// One partition: a single commit order makes push order exact.
	c.CreateTenant(TenantSpec{Name: "ps", QuotaRU: 1e9, Partitions: 1, DisableProxyCache: true})
	addr, srv, err := c.Serve("127.0.0.1:0", "ps")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sub, _ := resp.Dial(addr)
	defer sub.Close()
	pub, _ := resp.Dial(addr)
	defer pub.Close()

	// SUBSCRIBE confirms with a per-channel array and running count.
	v, err := sub.DoStrings("SUBSCRIBE", "__keyspace@0__:k1")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 3 || string(v.Array[0].Str) != "subscribe" || v.Array[2].Int != 1 {
		t.Fatalf("subscribe confirm = %+v", v)
	}
	// PSUBSCRIBE gives key-prefix filtering over the keyspace channels.
	v, err = sub.DoStrings("PSUBSCRIBE", "__keyspace@0__:user:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Array) != 3 || string(v.Array[0].Str) != "psubscribe" || v.Array[2].Int != 2 {
		t.Fatalf("psubscribe confirm = %+v", v)
	}

	if v, _ := pub.DoStrings("SET", "k1", "v1"); v.Text() != "OK" {
		t.Fatalf("SET k1 = %+v", v)
	}
	if v, _ := pub.DoStrings("SET", "user:7", "u"); v.Text() != "OK" {
		t.Fatalf("SET user:7 = %+v", v)
	}
	if v, _ := pub.DoStrings("SET", "unwatched", "x"); v.Text() != "OK" {
		t.Fatalf("SET unwatched = %+v", v)
	}
	if v, _ := pub.DoStrings("DEL", "k1"); v.Int != 1 {
		t.Fatalf("DEL k1 = %+v", v)
	}

	wantMessage(t, readPush(t, sub), "__keyspace@0__:k1", "set")
	p := readPush(t, sub)
	if len(p.Array) != 4 || string(p.Array[0].Str) != "pmessage" ||
		string(p.Array[1].Str) != "__keyspace@0__:user:*" ||
		string(p.Array[2].Str) != "__keyspace@0__:user:7" ||
		string(p.Array[3].Str) != "set" {
		t.Fatalf("pmessage = %+v", p)
	}
	// The unwatched key was skipped entirely: the next push is k1's
	// delete, not a message for "unwatched".
	wantMessage(t, readPush(t, sub), "__keyspace@0__:k1", "del")
}

func TestServeSubscribedStateMachine(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "sm", QuotaRU: 1e9, Partitions: 1})
	addr, srv, err := c.Serve("127.0.0.1:0", "sm")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()

	if v, _ := cl.DoStrings("SUBSCRIBE", "__keyspace@0__:a"); len(v.Array) != 3 {
		t.Fatalf("subscribe = %+v", v)
	}
	// Non-pub/sub commands are rejected while subscribed.
	v, _ := cl.DoStrings("GET", "a")
	if !v.IsError() || !strings.Contains(v.Text(), "only (P)SUBSCRIBE") {
		t.Fatalf("GET while subscribed = %+v", v)
	}
	v, _ = cl.DoStrings("SET", "a", "b")
	if !v.IsError() {
		t.Fatalf("SET while subscribed = %+v", v)
	}
	// PING stays allowed (Redis keeps it for liveness).
	if v, _ := cl.DoStrings("PING"); v.Text() != "PONG" {
		t.Fatalf("PING while subscribed = %+v", v)
	}
	// UNSUBSCRIBE with no arguments drops everything and reopens the
	// command set.
	v, _ = cl.DoStrings("UNSUBSCRIBE")
	if len(v.Array) != 3 || string(v.Array[0].Str) != "unsubscribe" || v.Array[2].Int != 0 {
		t.Fatalf("unsubscribe = %+v", v)
	}
	if v, _ := cl.DoStrings("SET", "a", "b"); v.Text() != "OK" {
		t.Fatalf("SET after unsubscribe = %+v", v)
	}
	// Unsubscribing while subscribed to nothing still acknowledges
	// (nil channel, count 0) so client accounting stays in step.
	v, _ = cl.DoStrings("UNSUBSCRIBE")
	if len(v.Array) != 3 || !v.Array[1].Null || v.Array[2].Int != 0 {
		t.Fatalf("unsubscribe-from-nothing = %+v", v)
	}
}

func TestServeResetExitsSubscribedMode(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "rs", QuotaRU: 1e9, Partitions: 1})
	addr, srv, err := c.Serve("127.0.0.1:0", "rs")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()

	if v, _ := cl.DoStrings("PSUBSCRIBE", "__keyspace@0__:*"); len(v.Array) != 3 {
		t.Fatalf("psubscribe = %+v", v)
	}
	if v, _ := cl.DoStrings("RESET"); v.Text() != "RESET" {
		t.Fatalf("RESET = %+v", v)
	}
	if v, _ := cl.DoStrings("SET", "afterreset", "1"); v.Text() != "OK" {
		t.Fatalf("SET after RESET = %+v", v)
	}
}

func TestServeChangesCommand(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "ch", QuotaRU: 1e9, Partitions: 1, DisableProxyCache: true})
	addr, srv, err := c.Serve("127.0.0.1:0", "ch")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()

	if v, _ := cl.DoStrings("SET", "c1", "v1"); v.Text() != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	if v, _ := cl.DoStrings("DEL", "c1"); v.Int != 1 {
		t.Fatalf("DEL = %+v", v)
	}

	// CHANGES 0: full retained history as [token, events].
	v, err := cl.DoStrings("CHANGES", "0")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != resp.Array || len(v.Array) != 2 {
		t.Fatalf("CHANGES reply shape = %+v", v)
	}
	token := string(v.Array[0].Str)
	events := v.Array[1].Array
	if len(events) != 2 {
		t.Fatalf("CHANGES returned %d events, want 2", len(events))
	}
	set, del := events[0], events[1]
	if string(set.Array[2].Str) != "set" || string(set.Array[3].Str) != "c1" || string(set.Array[4].Str) != "v1" {
		t.Fatalf("set event = %+v", set)
	}
	if string(del.Array[2].Str) != "del" || !del.Array[4].Null {
		t.Fatalf("del event = %+v", del)
	}

	// Caught up: polling with the returned token yields nothing new.
	v, _ = cl.DoStrings("CHANGES", token)
	if len(v.Array[1].Array) != 0 {
		t.Fatalf("caught-up CHANGES = %+v", v)
	}
	// $ mints a tail token without reading history.
	v, _ = cl.DoStrings("CHANGES", "$")
	if len(v.Array) != 2 || len(v.Array[0].Str) == 0 || len(v.Array[1].Array) != 0 {
		t.Fatalf("CHANGES $ = %+v", v)
	}
	// Malformed tokens get their own error class.
	v, _ = cl.DoStrings("CHANGES", "not-a-token")
	if !v.IsError() || !strings.HasPrefix(v.Text(), "BADTOKEN") {
		t.Fatalf("CHANGES bad token = %+v", v)
	}
}

// TestServeSubscriberDisconnectCleanup: an abruptly closed subscriber
// connection tears its change subscription down server-side; the
// server keeps serving and writes keep flowing.
func TestServeSubscriberDisconnectCleanup(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "dc", QuotaRU: 1e9, Partitions: 1, DisableProxyCache: true})
	addr, srv, err := c.Serve("127.0.0.1:0", "dc")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	sub, _ := resp.Dial(addr)
	if v, _ := sub.DoStrings("SUBSCRIBE", "__keyspace@0__:x"); len(v.Array) != 3 {
		t.Fatalf("subscribe = %+v", v)
	}
	sub.Close() // hang up without unsubscribing

	cl, _ := resp.Dial(addr)
	defer cl.Close()
	for i := 0; i < 20; i++ {
		if v, _ := cl.DoStrings("SET", "x", "y"); v.Text() != "OK" {
			t.Fatalf("SET after subscriber disconnect = %+v", v)
		}
	}
}

package abase

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"abase/internal/faultinject"
	"abase/internal/resp"
)

// TestClusterFailoverEndToEnd drives the whole stack: kill a primary
// under the fault injector, let the monitor fail it over, and check
// that the client's writes resume, nothing acknowledged is lost, and
// follower reads serve during the outage.
func TestClusterFailoverEndToEnd(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 4})
	ten, err := c.CreateTenant(TenantSpec{Name: "ft", QuotaRU: 1e9, Partitions: 4, DisableProxyCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cl := ten.Client()
	model := map[string]string{}
	for i := 0; i < 200; i++ {
		k, v := fmt.Sprintf("k-%03d", i), fmt.Sprintf("v-%03d", i)
		if err := cl.Set(bg, []byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	c.Meta.FlushReplication()

	// Kill the primary of k-000's partition via the injector.
	route, err := c.Meta.RouteFor("ft", []byte("k-000"))
	if err != nil {
		t.Fatal(err)
	}
	victim, err := c.Meta.Node(route.Primary)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(c.cfg.Clock)
	inj.Kill(victim)

	// During the outage, primary reads on the affected key fail but a
	// follower-preference client keeps reading.
	if _, err := cl.Get(bg, []byte("k-000")); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("primary read during outage: %v, want ErrUnavailable", err)
	}
	fcl := ten.Client()
	fcl.SetReadPreference(ReadFollower)
	if v, err := fcl.Get(bg, []byte("k-000")); err != nil || string(v) != "v-000" {
		t.Fatalf("follower read during outage = %q, %v", v, err)
	}

	// Two monitor cycles cross the probe threshold and promote.
	c.MonitorTrafficOnce(time.Second)
	c.MonitorTrafficOnce(time.Second)

	// Writes resume (the proxy's bounded retry hides the new route).
	if err := cl.Set(bg, []byte("k-000"), []byte("v-post")); err != nil {
		t.Fatalf("write after monitor-driven failover: %v", err)
	}
	model["k-000"] = "v-post"

	// Nothing acknowledged is lost, via primary reads.
	for k, want := range model {
		got, err := cl.Get(bg, []byte(k))
		if err != nil || string(got) != want {
			t.Fatalf("key %s = %q, %v (want %q)", k, got, err, want)
		}
	}

	// The revived node is fenced and rejoins as a follower.
	inj.Revive(victim)
	c.MonitorTrafficOnce(time.Second)
	if err := cl.Set(bg, []byte("k-000"), []byte("v-final")); err != nil {
		t.Fatalf("write after revival: %v", err)
	}
	if v, err := cl.Get(bg, []byte("k-000")); err != nil || string(v) != "v-final" {
		t.Fatalf("read after revival = %q, %v", v, err)
	}
}

// TestClusterFailoverUnderConcurrentTraffic is the cluster-level race
// test: MGET/MSET/SCAN traffic runs while a primary dies and is failed
// over, with `-race` watching the whole stack. Acked writes survive.
func TestClusterFailoverUnderConcurrentTraffic(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 5})
	ten, err := c.CreateTenant(TenantSpec{Name: "race", QuotaRU: 1e9, Partitions: 4, DisableProxyCache: true})
	if err != nil {
		t.Fatal(err)
	}
	cl := ten.Client()
	var keys [][]byte
	for i := 0; i < 128; i++ {
		k := []byte(fmt.Sprintf("rk-%03d", i))
		keys = append(keys, k)
		if err := cl.Set(bg, k, []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	c.Meta.FlushReplication()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // batched readers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cl.MGet(bg, keys...)
		}
	}()
	go func() { // scanners
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cursor := ""
			for i := 0; i < 1000; i++ {
				_, next, err := cl.Scan(bg, cursor, "", 32)
				if err != nil || next == "" {
					break
				}
				cursor = next
			}
		}
	}()
	acked := make(chan string, 4096)
	go func() { // writer
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := keys[i%len(keys)]
			v := fmt.Sprintf("w-%06d", i)
			if err := cl.Set(bg, k, []byte(v)); err == nil {
				select {
				case acked <- string(k) + "=" + v:
				default:
				}
			}
			i++
		}
	}()

	// Chaos in the middle of the traffic.
	route, _ := c.Meta.RouteFor("race", keys[0])
	victim, _ := c.Meta.Node(route.Primary)
	victim.SetDown(true)
	c.MonitorTrafficOnce(time.Second)
	c.MonitorTrafficOnce(time.Second)
	time.Sleep(20 * time.Millisecond)
	victim.SetDown(false)
	c.MonitorTrafficOnce(time.Second)

	close(stop)
	wg.Wait()
	close(acked)

	// Sample of acked writes: the LAST ack per key must not read as
	// lost (an older value is fine — later unacked writes may have
	// raced — but error/absence is not).
	last := map[string]string{}
	for kv := range acked {
		for eq := 0; eq < len(kv); eq++ {
			if kv[eq] == '=' {
				last[kv[:eq]] = kv[eq+1:]
				break
			}
		}
	}
	for k := range last {
		if _, err := cl.Get(bg, []byte(k)); err != nil {
			t.Fatalf("acked key %s unreadable after chaos: %v", k, err)
		}
	}
	// Full scan terminates and covers the keyspace.
	seen := map[string]bool{}
	cursor := ""
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("cursor did not terminate")
		}
		ks, next, err := cl.Scan(bg, cursor, "", 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range ks {
			seen[string(k)] = true
		}
		if next == "" {
			break
		}
		cursor = next
	}
	for _, k := range keys {
		if !seen[string(k)] {
			t.Fatalf("scan missed key %s after failover", k)
		}
	}
}

// TestServeReadOnlyReadWrite: the RESP session toggles follower reads
// with READONLY/READWRITE, and a READONLY session keeps answering GETs
// while the key's primary is down.
func TestServeReadOnlyReadWrite(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	if _, err := c.CreateTenant(TenantSpec{Name: "ro", QuotaRU: 1e9, DisableProxyCache: true}); err != nil {
		t.Fatal(err)
	}
	addr, srv, err := c.Serve("127.0.0.1:0", "ro")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()

	if v, _ := cl.DoStrings("SET", "k", "v"); v.Text() != "OK" {
		t.Fatalf("SET = %+v", v)
	}
	c.Meta.FlushReplication()
	if v, _ := cl.DoStrings("READONLY", "extra"); !v.IsError() {
		t.Fatalf("READONLY with args = %+v", v)
	}
	if v, _ := cl.DoStrings("READONLY"); v.Text() != "OK" {
		t.Fatalf("READONLY = %+v", v)
	}

	route, _ := c.Meta.RouteFor("ro", []byte("k"))
	victim, _ := c.Meta.Node(route.Primary)
	victim.SetDown(true)

	// Follower-preference session reads through the outage.
	if v, _ := cl.DoStrings("GET", "k"); v.Text() != "v" {
		t.Fatalf("READONLY GET during outage = %+v", v)
	}
	// Back to primary reads: the same GET now reports unavailability.
	if v, _ := cl.DoStrings("READWRITE"); v.Text() != "OK" {
		t.Fatalf("READWRITE = %+v", v)
	}
	if v, _ := cl.DoStrings("GET", "k"); !v.IsError() {
		t.Fatalf("READWRITE GET during outage = %+v, want UNAVAILABLE error", v)
	}
	victim.SetDown(false)
	if v, _ := cl.DoStrings("GET", "k"); v.Text() != "v" {
		t.Fatalf("GET after revival = %+v", v)
	}
}

package abase

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"abase/internal/datanode"
	"abase/internal/resp"
)

func fastCost() datanode.CostModel {
	return datanode.CostModel{CPUTime: time.Nanosecond, IOReadTime: time.Nanosecond, IOWriteTime: time.Nanosecond}
}

func newCluster(t *testing.T, cfg ClusterConfig) *Cluster {
	t.Helper()
	if cfg.Cost == (datanode.CostModel{}) {
		cfg.Cost = fastCost()
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestClusterQuickstart(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tenant, err := c.CreateTenant(TenantSpec{
		Name: "app", QuotaRU: 100000, Partitions: 4, Proxies: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tenant.Client()
	if err := cl.Set(bg, []byte("greeting"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(bg, []byte("greeting"))
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := cl.Delete(bg, []byte("greeting")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(bg, []byte("greeting")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Replicas: 3}); err == nil {
		t.Fatal("replicas > nodes accepted")
	}
	c := newCluster(t, ClusterConfig{Nodes: 3})
	if _, err := c.CreateTenant(TenantSpec{}); err == nil {
		t.Fatal("empty tenant name accepted")
	}
	if _, err := c.Tenant("ghost"); err == nil {
		t.Fatal("unknown tenant lookup succeeded")
	}
}

func TestMultiTenantIsolationOfData(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	t1, _ := c.CreateTenant(TenantSpec{Name: "t1", QuotaRU: 100000})
	t2, _ := c.CreateTenant(TenantSpec{Name: "t2", QuotaRU: 100000})
	t1.Client().Set(bg, []byte("shared-key"), []byte("from-t1"))
	t2.Client().Set(bg, []byte("shared-key"), []byte("from-t2"))
	v1, _ := t1.Client().Get(bg, []byte("shared-key"))
	v2, _ := t2.Client().Get(bg, []byte("shared-key"))
	if string(v1) != "from-t1" || string(v2) != "from-t2" {
		t.Fatalf("cross-tenant leak: %q %q", v1, v2)
	}
}

func TestHashOpsThroughClient(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "h", QuotaRU: 100000})
	cl := tn.Client()
	if n, err := cl.HSet(bg, []byte("user:1"), "name", []byte("ada")); err != nil || n != 1 {
		t.Fatalf("HSet = %d, %v", n, err)
	}
	cl.HSet(bg, []byte("user:1"), "lang", []byte("go"))
	v, err := cl.HGet(bg, []byte("user:1"), "name")
	if err != nil || string(v) != "ada" {
		t.Fatalf("HGet = %q, %v", v, err)
	}
	if n, _ := cl.HLen(bg, []byte("user:1")); n != 2 {
		t.Fatalf("HLen = %d", n)
	}
	all, _ := cl.HGetAll(bg, []byte("user:1"))
	if len(all) != 2 {
		t.Fatalf("HGetAll = %v", all)
	}
	if n, _ := cl.HDel(bg, []byte("user:1"), "lang"); n != 1 {
		t.Fatalf("HDel = %d", n)
	}
}

func TestMGetMSet(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "m", QuotaRU: 100000})
	cl := tn.Client()
	if err := cl.MSet(bg, map[string][]byte{"a": []byte("1"), "b": []byte("2")}); err != nil {
		t.Fatal(err)
	}
	vs, err := cl.MGet(bg, []byte("a"), []byte("missing"), []byte("b"))
	if err != nil {
		t.Fatal(err)
	}
	if string(vs[0]) != "1" || vs[1] != nil || string(vs[2]) != "2" {
		t.Fatalf("MGet = %q", vs)
	}
}

func TestTenantSetQuotaPropagates(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "q", QuotaRU: 10, Partitions: 2, Proxies: 2})
	if tn.Quota() != 10 {
		t.Fatalf("Quota = %v", tn.Quota())
	}
	tn.SetQuota(1_000_000)
	if tn.Quota() != 1_000_000 {
		t.Fatalf("Quota after set = %v", tn.Quota())
	}
	// Generous quota: writes must flow without throttling.
	cl := tn.Client()
	for i := 0; i < 200; i++ {
		if err := cl.Set(bg, []byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("x"), 1024)); err != nil {
			t.Fatalf("throttled after quota raise: %v", err)
		}
	}
}

func TestTTLThroughCluster(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "ttl", QuotaRU: 100000, DisableProxyCache: true})
	cl := tn.Client()
	cl.Set(bg, []byte("k"), []byte("v"), WithTTL(time.Hour))
	if _, err := cl.Get(bg, []byte("k")); err != nil {
		t.Fatalf("fresh TTL key missing: %v", err)
	}
}

func TestMonitorTrafficOnce(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "mt", QuotaRU: 1000})
	c.MonitorTrafficOnce(time.Second) // smoke: no panic, no deadlock
}

func TestServeRESP(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "web", QuotaRU: 100000})
	addr, srv, err := c.Serve("127.0.0.1:0", "")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := resp.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if v, _ := cl.DoStrings("PING"); v.Text() != "PONG" {
		t.Fatalf("PING = %v", v)
	}
	// Before AUTH, data commands are rejected.
	if v, _ := cl.DoStrings("GET", "k"); !v.IsError() {
		t.Fatalf("unauthenticated GET = %+v", v)
	}
	if v, _ := cl.DoStrings("AUTH", "web"); v.Text() != "OK" {
		t.Fatalf("AUTH = %v", v)
	}
	if v, _ := cl.DoStrings("SET", "k", "v"); v.Text() != "OK" {
		t.Fatalf("SET = %v", v)
	}
	if v, _ := cl.DoStrings("GET", "k"); v.Text() != "v" {
		t.Fatalf("GET = %v", v)
	}
	if v, _ := cl.DoStrings("SET", "e", "x", "EX", "100"); v.Text() != "OK" {
		t.Fatalf("SET EX = %v", v)
	}
	if v, _ := cl.DoStrings("DEL", "k"); v.Int != 1 {
		t.Fatalf("DEL = %+v", v)
	}
	if v, _ := cl.DoStrings("GET", "k"); !v.Null {
		t.Fatalf("GET deleted = %+v", v)
	}
	if v, _ := cl.DoStrings("HSET", "h", "f1", "v1", "f2", "v2"); v.Int != 2 {
		t.Fatalf("HSET = %+v", v)
	}
	if v, _ := cl.DoStrings("HLEN", "h"); v.Int != 2 {
		t.Fatalf("HLEN = %+v", v)
	}
	if v, _ := cl.DoStrings("HGETALL", "h"); len(v.Array) != 4 {
		t.Fatalf("HGETALL = %+v", v)
	}
	if v, _ := cl.DoStrings("MSET", "a", "1", "b", "2"); v.Text() != "OK" {
		t.Fatalf("MSET = %v", v)
	}
	if v, _ := cl.DoStrings("MGET", "a", "nope", "b"); len(v.Array) != 3 || !v.Array[1].Null {
		t.Fatalf("MGET = %+v", v)
	}
	if v, _ := cl.DoStrings("EXISTS", "a", "nope"); v.Int != 1 {
		t.Fatalf("EXISTS = %+v", v)
	}
	if v, _ := cl.DoStrings("AUTH", "ghost"); !v.IsError() {
		t.Fatalf("AUTH ghost = %+v", v)
	}
	if v, _ := cl.DoStrings("BOGUS"); !v.IsError() {
		t.Fatalf("BOGUS = %+v", v)
	}
}

func TestServeDefaultTenant(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "def", QuotaRU: 100000})
	addr, srv, err := c.Serve("127.0.0.1:0", "def")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()
	if v, _ := cl.DoStrings("SET", "x", "1"); v.Text() != "OK" {
		t.Fatalf("SET with default tenant = %+v", v)
	}
}

func TestTTLThroughStack(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "ttl2", QuotaRU: 100000, DisableProxyCache: true})
	cl := tn.Client()
	cl.Set(bg, []byte("eternal"), []byte("v"))
	cl.Set(bg, []byte("mortal"), []byte("v"), WithTTL(time.Hour))

	if _, hasTTL, err := cl.TTL(bg, []byte("eternal")); err != nil || hasTTL {
		t.Fatalf("eternal TTL = hasTTL=%v err=%v", hasTTL, err)
	}
	ttl, hasTTL, err := cl.TTL(bg, []byte("mortal"))
	if err != nil || !hasTTL || ttl <= 0 || ttl > time.Hour {
		t.Fatalf("mortal TTL = %v %v %v", ttl, hasTTL, err)
	}
	if _, _, err := cl.TTL(bg, []byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ghost TTL err = %v", err)
	}
	if err := cl.Expire(bg, []byte("eternal"), time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, hasTTL, _ := cl.TTL(bg, []byte("eternal")); !hasTTL {
		t.Fatal("Expire did not set TTL")
	}
	if err := cl.Expire(bg, []byte("ghost"), time.Minute); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Expire ghost = %v", err)
	}
}

func TestServeTTLCommands(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	c.CreateTenant(TenantSpec{Name: "web2", QuotaRU: 100000, DisableProxyCache: true})
	addr, srv, err := c.Serve("127.0.0.1:0", "web2")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, _ := resp.Dial(addr)
	defer cl.Close()

	cl.DoStrings("SET", "k", "v", "EX", "100")
	if v, _ := cl.DoStrings("TTL", "k"); v.Int <= 0 || v.Int > 100 {
		t.Fatalf("TTL = %+v", v)
	}
	cl.DoStrings("SET", "p", "v")
	if v, _ := cl.DoStrings("TTL", "p"); v.Int != -1 {
		t.Fatalf("TTL persistent = %+v", v)
	}
	if v, _ := cl.DoStrings("TTL", "ghost"); v.Int != -2 {
		t.Fatalf("TTL absent = %+v", v)
	}
	if v, _ := cl.DoStrings("EXPIRE", "p", "60"); v.Int != 1 {
		t.Fatalf("EXPIRE = %+v", v)
	}
	if v, _ := cl.DoStrings("EXPIRE", "ghost", "60"); v.Int != 0 {
		t.Fatalf("EXPIRE absent = %+v", v)
	}
	// Redis semantics: a zero/negative expiry deletes the key and
	// replies 1; a non-integer argument is an error.
	if v, _ := cl.DoStrings("EXPIRE", "p", "-5"); v.Int != 1 {
		t.Fatalf("EXPIRE negative = %+v", v)
	}
	if v, _ := cl.DoStrings("TTL", "p"); v.Int != -2 {
		t.Fatalf("TTL after negative EXPIRE = %+v, want -2 (deleted)", v)
	}
	if v, _ := cl.DoStrings("EXPIRE", "ghost", "0"); v.Int != 0 {
		t.Fatalf("EXPIRE 0 on absent key = %+v", v)
	}
	if v, _ := cl.DoStrings("EXPIRE", "k", "soon"); !v.IsError() {
		t.Fatalf("EXPIRE non-integer = %+v", v)
	}
}

// TestAutoSplitOnSustainedHeat: sustained skewed load must double the
// tenant's partitions through MonitorTrafficOnce alone — no manual
// SplitTenantPartitions — and the data survives the rehash.
func TestAutoSplitOnSustainedHeat(t *testing.T) {
	c := newCluster(t, ClusterConfig{
		Nodes:              3,
		AdmitCost:          time.Nanosecond,
		HeatSplitThreshold: 50, // ops/sec, decayed
		HeatSplitWindows:   2,
	})
	tn, err := c.CreateTenant(TenantSpec{
		Name: "skewed", QuotaRU: 1e9, Partitions: 2,
		// Cache off so every read registers as data-plane heat.
		DisableProxyCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.Client()
	hot := []byte("the-hot-key")
	if err := cl.Set(bg, hot, []byte("v")); err != nil {
		t.Fatal(err)
	}
	hammer := func() {
		for i := 0; i < 3000; i++ {
			if _, err := cl.Get(bg, hot); err != nil {
				t.Fatal(err)
			}
		}
	}
	hammer()
	if split := c.MonitorTrafficOnce(time.Second); len(split) != 0 {
		t.Fatalf("split on the first hot cycle: %v (want sustained heat)", split)
	}
	hammer()
	split := c.MonitorTrafficOnce(time.Second)
	if len(split) != 1 || split[0] != "skewed" {
		t.Fatalf("second cycle split = %v, want [skewed]", split)
	}
	if n, _ := c.Meta.NumPartitions("skewed"); n != 4 {
		t.Fatalf("partitions after auto split = %d, want 4", n)
	}
	if v, err := cl.Get(bg, hot); err != nil || string(v) != "v" {
		t.Fatalf("hot key unreadable after auto split: %q, %v", v, err)
	}
}

// TestClientHotKeysAndPersist: the client surface over the new
// subsystem — HotKeys aggregation and Persist TTL removal.
func TestClientHotKeysAndPersist(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3, HotSampleRate: 1, AdmitCost: time.Nanosecond})
	tn, err := c.CreateTenant(TenantSpec{
		Name: "api", QuotaRU: 1e9, Partitions: 2, DisableProxyCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.Client()
	cl.Set(bg, []byte("feverish"), []byte("v"))
	for i := 0; i < 150; i++ {
		if _, err := cl.Get(bg, []byte("feverish")); err != nil {
			t.Fatal(err)
		}
	}
	hot, err := cl.HotKeys(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 || string(hot[0].Key) != "feverish" {
		t.Fatalf("HotKeys = %+v, want feverish first", hot)
	}

	cl.Set(bg, []byte("m"), []byte("v"), WithTTL(time.Hour))
	removed, err := cl.Persist(bg, []byte("m"))
	if err != nil || !removed {
		t.Fatalf("Persist = %v, %v; want removed", removed, err)
	}
	if _, hasTTL, _ := cl.TTL(bg, []byte("m")); hasTTL {
		t.Fatal("TTL survived Persist")
	}
	if removed, err := cl.Persist(bg, []byte("m")); err != nil || removed {
		t.Fatalf("second Persist = %v, %v; want false", removed, err)
	}
	if _, err := cl.Persist(bg, []byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Persist ghost = %v", err)
	}
}

// TestHotKeysSeesCacheAbsorbedKeys: once mitigation caches a hot key,
// its reads stop reaching the data plane — HOTKEYS must still surface
// it via the proxy fleet's own admission sketches.
func TestHotKeysSeesCacheAbsorbedKeys(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3, AdmitCost: time.Nanosecond})
	tn, err := c.CreateTenant(TenantSpec{
		Name: "absorb", QuotaRU: 1e9, Partitions: 2, // proxy cache ON
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.Client()
	cl.Set(bg, []byte("absorbed"), []byte("v"))
	for i := 0; i < 200; i++ { // nearly all of these are AU-LRU hits
		if _, err := cl.Get(bg, []byte("absorbed")); err != nil {
			t.Fatal(err)
		}
	}
	if hits := tn.Fleet().AggregateStats().CacheHits; hits < 150 {
		t.Fatalf("cache hits = %d, want the workload absorbed", hits)
	}
	hot, err := cl.HotKeys(bg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) == 0 || string(hot[0].Key) != "absorbed" {
		t.Fatalf("HotKeys = %+v, want the cache-absorbed key first", hot)
	}
	if hot[0].Count < 100 {
		t.Fatalf("absorbed count = %v, want the offered load, not the origin trickle", hot[0].Count)
	}
}

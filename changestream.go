package abase

// This file is the client surface of the change-stream subsystem:
// push subscriptions (Subscribe), XREAD-style polling (ReadChanges),
// and time-travel replay (Replay). All three ride the per-partition
// change logs the engine keeps in its WAL; positions are engine
// sequence numbers that replicas share byte-for-byte, so the opaque
// resume tokens minted here survive primary failover — and survive
// tenant splits, because a split only appends partitions and a short
// token vector extends with zeros.
//
// Delivery semantics:
//
//   - Exactly once per resume across failover: resuming from an
//     event's Token re-delivers nothing at or below that event and
//     misses nothing above it, even when a different replica has been
//     promoted in between.
//   - At least once across splits: positions for newly appended
//     partitions start at zero, so keys rehashed into them replay
//     from the start of retained history.
//   - In order per key: a key's events arrive in commit order (a key
//     lives in one partition, and each partition's log is delivered
//     in sequence order).
//   - Deletes are never fabricated: the tombstones a split writes to
//     migrate keys off their source partition are suppressed, because
//     the key still exists — it just lives elsewhere now.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"abase/internal/changestream"
	"abase/internal/datanode"
	"abase/internal/partition"
)

// Change-stream sentinel errors.
var (
	// ErrBadToken is returned when a resume token cannot be decoded
	// (or names a different tenant). Malformed tokens always error —
	// never resume at a wrong offset.
	ErrBadToken = changestream.ErrBadToken
	// ErrHistoryTruncated is returned when a token or replay range
	// points below the retained change history: the exact sequence of
	// events can no longer be reproduced, and the system says so
	// instead of silently skipping the gap. Re-sync (e.g. Scan) and
	// subscribe afresh.
	ErrHistoryTruncated = changestream.ErrHistoryTruncated
	// ErrSlowConsumer ends a subscription whose consumer stopped
	// draining Events: the buffer stayed full past the grace period.
	// Nothing is lost — resume from the last processed event's Token.
	ErrSlowConsumer = changestream.ErrSlowConsumer
)

// Change is one committed write delivered by the change stream.
type Change struct {
	// Partition is the partition index the write committed in.
	Partition int
	// Seq is the write's position in that partition's change log.
	Seq uint64
	// Key and Value are the written pair (Value nil for deletes).
	Key, Value []byte
	// Delete reports a tombstone.
	Delete bool
	// Token resumes the stream just after this event: pass it to
	// Subscribe or ReadChanges and delivery continues with the next
	// event, delivering this one and its predecessors never again.
	// Empty for Replay events (a replay is a read, not a position).
	Token string
}

// subSeq names subscriptions (and their retention holds) uniquely
// within the process.
var subSeq atomic.Uint64

// changeView is the client-side cursor state shared by the polling
// and push surfaces: a decoded token plus the paging logic that
// advances it.
type changeView struct {
	tok changestream.Token
}

// resolveToken builds the starting cursor for a stream: decode and
// validate a resume token, or mint a fresh one at the start of
// retained history (fromStart) or the current end of every log.
func (c *Client) resolveToken(ctx context.Context, resume string, fromStart bool) (changestream.Token, error) {
	n, err := c.fleet.NumPartitions()
	if err != nil {
		return changestream.Token{}, err
	}
	if resume != "" {
		tok, err := changestream.Decode(resume)
		if err != nil {
			return changestream.Token{}, err
		}
		if tok.Tenant != c.fleet.Tenant() {
			return changestream.Token{}, fmt.Errorf("%w: token for tenant %q used against %q",
				ErrBadToken, tok.Tenant, c.fleet.Tenant())
		}
		if len(tok.Positions) > n {
			return changestream.Token{}, fmt.Errorf("%w: token names %d partitions, tenant has %d",
				ErrBadToken, len(tok.Positions), n)
		}
		return tok.Extend(n), nil
	}
	tok := changestream.Token{Tenant: c.fleet.Tenant(), Positions: make([]uint64, n)}
	if fromStart {
		return tok, nil
	}
	for i := range tok.Positions {
		_, end, err := c.fleet.ChangesBounds(ctx, i)
		if err != nil {
			return changestream.Token{}, err
		}
		tok.Positions[i] = end
	}
	return tok, nil
}

// page reads one bounded round of events across all partitions,
// advancing the cursor. Migration tombstones (a split moving a key off
// its old partition) advance the cursor without being emitted: the key
// was not deleted, it moved. Each emitted event carries the token that
// resumes just past it.
func (c *Client) page(ctx context.Context, v *changeView, max int) ([]Change, error) {
	// A split since the last page only appends partitions; pick the
	// new ones up with zeroed positions.
	if n, err := c.fleet.NumPartitions(); err == nil && n > len(v.tok.Positions) {
		v.tok = v.tok.Extend(n)
	}
	var out []Change
	for part := range v.tok.Positions {
		for len(out) < max {
			budget := max - len(out)
			if budget > datanode.MaxChangeBatch {
				budget = datanode.MaxChangeBatch
			}
			batch, err := c.fleet.Changes(ctx, part, v.tok.Positions[part]+1, budget)
			if err != nil {
				return out, err
			}
			if len(batch.Events) == 0 {
				break
			}
			curN := len(v.tok.Positions)
			for _, ev := range batch.Events {
				v.tok.Positions[part] = ev.Seq
				if ev.Delete && partition.PartitionOf(ev.Key, curN) != part {
					continue // migration tombstone: the key moved, suppress
				}
				out = append(out, Change{
					Partition: part,
					Seq:       ev.Seq,
					Key:       ev.Key,
					Value:     ev.Value,
					Delete:    ev.Delete,
					Token:     v.tok.Encode(),
				})
			}
		}
		if len(out) >= max {
			break
		}
	}
	return out, nil
}

// ChangePage is one ReadChanges result: the events read and the token
// that continues the poll.
type ChangePage struct {
	Changes []Change
	// Token resumes after everything in Changes (even suppressed
	// migration tombstones — the cursor never re-reads them). Always
	// valid, also when Changes is empty.
	Token string
}

// ChangesToken returns a resume token positioned at the current end of
// every partition's change log: passing it to ReadChanges or Subscribe
// streams only events committed after this call (the XREAD "$" idiom).
func (c *Client) ChangesToken(ctx context.Context) (string, error) {
	tok, err := c.resolveToken(ctx, "", false)
	if err != nil {
		return "", err
	}
	return tok.Encode(), nil
}

// ReadChanges is the polling surface of the change stream (the XREAD
// shape): read up to max committed events past token, returning them
// with the token for the next call. An empty token starts from the
// beginning of retained history; ChangesToken mints a tail-only start.
// An empty page means the caller is caught up — poll again later. A
// token below retained history returns ErrHistoryTruncated rather
// than skipping the gap.
//
// Change reads are system traffic: they consume no tenant quota, and
// each call is bounded by max instead.
func (c *Client) ReadChanges(ctx context.Context, token string, max int) (ChangePage, error) {
	tok, err := c.resolveToken(ctx, token, true)
	if err != nil {
		return ChangePage{}, err
	}
	if max <= 0 {
		max = 256
	}
	v := changeView{tok: tok}
	events, err := c.page(ctx, &v, max)
	if err != nil {
		return ChangePage{}, err
	}
	return ChangePage{Changes: events, Token: v.tok.Encode()}, nil
}

// Replay is time travel: it returns partition part's committed events
// with sequence numbers in [from, to], exactly and in order, or fails.
// to == 0 means the current end of the log; a to beyond the end clamps
// to it (each event carries its Seq, so the reached bound is visible).
// If any part of the range has been pruned from retained history the
// result is ErrHistoryTruncated — never a silent gap. Replay is raw
// history: unlike subscriptions it includes the tombstones a split
// wrote to migrate keys, because that is what the log recorded.
func (c *Client) Replay(ctx context.Context, part int, from, to uint64) ([]Change, error) {
	if from == 0 {
		from = 1
	}
	_, end, err := c.fleet.ChangesBounds(ctx, part)
	if err != nil {
		return nil, err
	}
	if to == 0 || to > end {
		to = end
	}
	var out []Change
	for cur := from; cur <= to; {
		max := int(to - cur + 1)
		if max > datanode.MaxChangeBatch {
			max = datanode.MaxChangeBatch
		}
		batch, err := c.fleet.Changes(ctx, part, cur, max)
		if err != nil {
			return nil, err
		}
		if len(batch.Events) == 0 {
			// The engine proves ranges below its end; an empty batch
			// inside [from, to] means the range is gone.
			return nil, fmt.Errorf("%w: partition %d events %d..%d unavailable",
				ErrHistoryTruncated, part, cur, to)
		}
		for _, ev := range batch.Events {
			out = append(out, Change{Partition: part, Seq: ev.Seq, Key: ev.Key, Value: ev.Value, Delete: ev.Delete})
		}
		cur = batch.Events[len(batch.Events)-1].Seq + 1
	}
	return out, nil
}

// SubscribeOptions configures a push subscription.
type SubscribeOptions struct {
	// Resume continues a previous stream from one of its tokens.
	// Empty starts at the current end of the logs (new events only)
	// unless FromStart is set.
	Resume string
	// FromStart begins at the start of retained history instead of
	// the current end. Ignored when Resume is set.
	FromStart bool
	// Buffer is the Events channel capacity (default 256). When the
	// buffer stays full past SlowConsumerGrace the subscription fails
	// with ErrSlowConsumer rather than buffer without bound.
	Buffer int
	// SlowConsumerGrace is how long a delivery may block on a full
	// buffer before the subscription is declared slow (default 5s).
	SlowConsumerGrace time.Duration
	// PollInterval is the fallback poll cadence used when commit
	// signals are quiet — after a failover re-routes the stream, or
	// for partitions appended by a split (default 25ms).
	PollInterval time.Duration
	// HoldTTL is the lease on the retention holds the subscription
	// places so the history between polls outlives WAL pruning
	// (default 30s). Holds refresh continuously and lapse on their
	// own if the process dies.
	HoldTTL time.Duration
}

// Subscription is a live change stream: a pump goroutine follows every
// partition's log and delivers committed events on Events in per-
// partition sequence order.
type Subscription struct {
	c      *Client
	holder string
	events chan Change
	cancel context.CancelFunc
	done   chan struct{}

	grace     time.Duration
	pollEvery time.Duration
	holdTTL   time.Duration

	mu  sync.Mutex
	tok changestream.Token
	err error

	sigCancels []func()
	wake       chan struct{}
}

// Subscribe opens a push subscription over the tenant's committed
// writes. Events are delivered on Events() until Close, ctx
// cancellation, or a terminal error (Err): ErrHistoryTruncated when a
// resume token's history has been pruned, ErrSlowConsumer when the
// consumer stops draining. Routine infrastructure trouble — a primary
// mid-failover, a route refresh — is retried inside the pump, not
// surfaced.
//
// The subscription holds WAL history at its cursor on every replica
// of every partition (leased, HoldTTL) so the events between polls
// are never pruned out from under it.
func (c *Client) Subscribe(ctx context.Context, opts SubscribeOptions) (*Subscription, error) {
	tok, err := c.resolveToken(ctx, opts.Resume, opts.FromStart)
	if err != nil {
		return nil, err
	}
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	if opts.SlowConsumerGrace <= 0 {
		opts.SlowConsumerGrace = 5 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 25 * time.Millisecond
	}
	if opts.HoldTTL <= 0 {
		opts.HoldTTL = 30 * time.Second
	}
	// Fail a stale resume fast, before the caller starts consuming.
	if opts.Resume != "" {
		for part, pos := range tok.Positions {
			lo, _, err := c.fleet.ChangesBounds(ctx, part)
			if err != nil {
				continue // unreachable partition: the pump will retry
			}
			if pos+1 < lo {
				return nil, fmt.Errorf("%w: partition %d resumes at %d, history starts at %d",
					ErrHistoryTruncated, part, pos+1, lo)
			}
		}
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &Subscription{
		c:         c,
		holder:    fmt.Sprintf("%s/sub-%d", c.fleet.Tenant(), subSeq.Add(1)),
		events:    make(chan Change, opts.Buffer),
		cancel:    cancel,
		done:      make(chan struct{}),
		grace:     opts.SlowConsumerGrace,
		pollEvery: opts.PollInterval,
		holdTTL:   opts.HoldTTL,
		tok:       tok,
		wake:      make(chan struct{}, 1),
	}
	s.refreshHolds(sctx)
	// Commit-signal forwarders give sub-interval wake-ups. They are
	// pinned to the nodes that are primary now; after a failover they
	// go quiet and the fallback poll carries the stream (a later
	// subscription re-pins). Best effort by design.
	for part := range tok.Positions {
		ch, sigCancel, err := c.fleet.ChangeSignal(sctx, part)
		if err != nil {
			continue
		}
		s.sigCancels = append(s.sigCancels, sigCancel)
		go func() {
			for range ch {
				select {
				case s.wake <- struct{}{}:
				default:
				}
			}
		}()
	}
	go s.pump(sctx)
	return s, nil
}

// Events returns the delivery channel. It closes when the
// subscription ends; check Err then.
func (s *Subscription) Events() <-chan Change { return s.events }

// Err reports why the subscription ended: nil after a clean Close (or
// while still live), the context error after cancellation, or a
// terminal stream error (ErrHistoryTruncated, ErrSlowConsumer).
func (s *Subscription) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Token returns a resume token covering every event delivered to the
// Events channel so far — including events still buffered there. To
// resume after the last event actually processed, use that event's
// own Token instead.
func (s *Subscription) Token() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tok.Encode()
}

// Close ends the subscription, releases its retention holds, and
// returns Err. Safe to call more than once.
func (s *Subscription) Close() error {
	s.cancel()
	<-s.done
	for _, c := range s.sigCancels {
		c()
	}
	s.sigCancels = nil
	// Holds release on a fresh context: the subscription ctx is gone.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.mu.Lock()
	n := len(s.tok.Positions)
	s.mu.Unlock()
	for part := 0; part < n; part++ {
		_ = s.c.fleet.ReleaseChanges(ctx, part, s.holder)
	}
	return s.Err()
}

// fail records the subscription's terminal error once.
func (s *Subscription) fail(err error) {
	s.mu.Lock()
	if s.err == nil && !errors.Is(err, context.Canceled) {
		s.err = err
	}
	s.mu.Unlock()
	s.cancel()
}

// refreshHolds re-leases the subscription's retention hold at the
// cursor on every partition (all route members — any follower may be
// promoted next).
func (s *Subscription) refreshHolds(ctx context.Context) {
	s.mu.Lock()
	positions := append([]uint64(nil), s.tok.Positions...)
	s.mu.Unlock()
	for part, pos := range positions {
		_ = s.c.fleet.HoldChanges(ctx, part, s.holder, pos+1, s.holdTTL)
	}
}

// pump is the subscription's delivery loop: page events from the
// partition logs, forward them to the consumer, renew holds, and idle
// on commit signals with a poll-interval fallback.
func (s *Subscription) pump(ctx context.Context) {
	defer close(s.done)
	defer close(s.events)
	// Hold renewal is time-based, not round-based: a busy stream
	// cycles rounds fast, an idle one slowly; both renew at ~1/3 TTL.
	nextHold := time.Now().Add(s.holdTTL / 3)
	for {
		if ctx.Err() != nil {
			s.fail(ctx.Err())
			return
		}
		if now := time.Now(); now.After(nextHold) {
			s.refreshHolds(ctx)
			nextHold = now.Add(s.holdTTL / 3)
		}
		// Deep-copy the cursor: page mutates Positions in place, and
		// Token() reads s.tok concurrently.
		s.mu.Lock()
		v := changeView{tok: changestream.Token{
			Tenant:    s.tok.Tenant,
			Positions: append([]uint64(nil), s.tok.Positions...),
		}}
		s.mu.Unlock()
		events, err := s.c.page(ctx, &v, datanode.MaxChangeBatch)
		// Deliver what was read even when the page ended in an error.
		for _, ev := range events {
			if !s.deliver(ctx, ev) {
				return
			}
		}
		s.mu.Lock()
		s.tok = v.tok
		s.mu.Unlock()
		switch {
		case err == nil:
		case errors.Is(err, ErrHistoryTruncated), errors.Is(err, ErrBadToken):
			s.fail(err)
			return
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.fail(ctx.Err())
			return
		default:
			// Transient infrastructure trouble (failover in flight,
			// node down): idle a beat and retry — positions are
			// stable, nothing can be missed.
		}
		if len(events) > 0 && err == nil {
			continue // keep draining a busy log before idling
		}
		t := time.NewTimer(s.pollEvery)
		select {
		case <-ctx.Done():
			t.Stop()
			s.fail(ctx.Err())
			return
		case <-s.wake:
			t.Stop()
		case <-t.C:
		}
	}
}

// deliver forwards one event to the consumer, tolerating a full
// buffer for the slow-consumer grace period.
func (s *Subscription) deliver(ctx context.Context, ev Change) bool {
	select {
	case s.events <- ev:
		return true
	case <-ctx.Done():
		s.fail(ctx.Err())
		return false
	default:
	}
	t := time.NewTimer(s.grace)
	defer t.Stop()
	select {
	case s.events <- ev:
		return true
	case <-ctx.Done():
		s.fail(ctx.Err())
		return false
	case <-t.C:
		s.fail(ErrSlowConsumer)
		return false
	}
}

package abase

import (
	"errors"
	"fmt"
	"testing"
)

// TestClientBatchOps drives the batched multi-key path end to end:
// MSetPairs → MGet/MExists/MDelete across several partitions and
// proxies, checking order preservation and per-key missing slots.
func TestClientBatchOps(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, err := c.CreateTenant(TenantSpec{
		Name: "batch", QuotaRU: 100000, Partitions: 4, Proxies: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.Client()

	kvs := make([]KV, 30)
	for i := range kvs {
		kvs[i] = KV{Key: []byte(fmt.Sprintf("k%d", i)), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	if err := cl.MSetPairs(bg, kvs); err != nil {
		t.Fatal(err)
	}

	// Interleave existing and missing keys; order must be preserved.
	keys := make([][]byte, 0, 40)
	for i := 0; i < 30; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%d", i)))
		if i%3 == 0 {
			keys = append(keys, []byte(fmt.Sprintf("missing%d", i)))
		}
	}
	values, err := cl.MGet(bg, keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != len(keys) {
		t.Fatalf("len(values) = %d, want %d", len(values), len(keys))
	}
	j := 0
	for i := 0; i < 30; i++ {
		if string(values[j]) != fmt.Sprintf("v%d", i) {
			t.Fatalf("slot %d = %q, want v%d", j, values[j], i)
		}
		j++
		if i%3 == 0 {
			if values[j] != nil {
				t.Fatalf("missing slot %d = %q, want nil", j, values[j])
			}
			j++
		}
	}

	exists, err := cl.MExists(bg, []byte("k0"), []byte("nope"), []byte("k29"))
	if err != nil {
		t.Fatal(err)
	}
	if !exists[0] || exists[1] || !exists[2] {
		t.Fatalf("MExists = %v", exists)
	}

	if n, err := cl.MDelete(bg, []byte("k0"), []byte("k1")); err != nil || n != 2 {
		t.Fatalf("MDelete = %d, %v", n, err)
	}
	// Absent keys are not counted and are not an error.
	if n, err := cl.MDelete(bg, []byte("k0"), []byte("never")); err != nil || n != 0 {
		t.Fatalf("MDelete of absent keys = %d, %v", n, err)
	}
	values, err = cl.MGet(bg, []byte("k0"), []byte("k2"))
	if err != nil {
		t.Fatal(err)
	}
	if values[0] != nil || string(values[1]) != "v2" {
		t.Fatalf("after MDelete: %q", values)
	}
}

// TestMGetPartialThrottle checks the headline batched-path behavior:
// when quota rejects the miss sub-batch, proxy-cached keys are still
// served and only the uncached slots report ErrThrottled — the batch
// is not aborted.
func TestMGetPartialThrottle(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, err := c.CreateTenant(TenantSpec{
		Name: "throttle", QuotaRU: 100000, Proxies: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := tn.Client()
	// Two accesses per key cross the hotness-gated admission threshold
	// (with one proxy per group, a key always lands on the same proxy).
	for i := 0; i < 2; i++ {
		cl.Set(bg, []byte("hot1"), []byte("a"))
		cl.Set(bg, []byte("hot2"), []byte("b"))
	}

	// Collapse the quota: the proxy limiters clamp their buckets, so
	// the next uncached read cannot be admitted.
	tn.SetQuota(0.000001)

	values, err := cl.MGet(bg, []byte("hot1"), []byte("cold"), []byte("hot2"))
	if string(values[0]) != "a" || string(values[2]) != "b" {
		t.Fatalf("cached slots = %q", values)
	}
	if values[1] != nil {
		t.Fatalf("throttled slot has value %q", values[1])
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("errors.Is(err, ErrThrottled) = false: %v", err)
	}
	if be.Errs[0] != nil || be.Errs[2] != nil || !errors.Is(be.Errs[1], ErrThrottled) {
		t.Fatalf("per-key slots = %v", be.Errs)
	}
}

// TestMGetNoErrorWhenOnlyMissing: missing keys are nil slots, not an
// error.
func TestMGetNoErrorWhenOnlyMissing(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "miss", QuotaRU: 100000})
	values, err := tn.Client().MGet(bg, []byte("a"), []byte("b"))
	if err != nil {
		t.Fatalf("MGet of missing keys errored: %v", err)
	}
	if values[0] != nil || values[1] != nil {
		t.Fatalf("values = %q", values)
	}
}

// TestMSetPairsDuplicateKeysLastWins: duplicate keys in one batch
// apply in order.
func TestMSetPairsDuplicateKeysLastWins(t *testing.T) {
	c := newCluster(t, ClusterConfig{Nodes: 3})
	tn, _ := c.CreateTenant(TenantSpec{Name: "dup", QuotaRU: 100000})
	cl := tn.Client()
	if err := cl.MSetPairs(bg, []KV{
		{Key: []byte("k"), Value: []byte("first")},
		{Key: []byte("k"), Value: []byte("second")},
	}); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Get(bg, []byte("k"))
	if err != nil || string(v) != "second" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}
